"""Tests for baseline platform models (GPU roofline, NeuRex, variants)."""

import numpy as np
import pytest

from repro.baselines.gpu import GPUModel, GPUSpec, RTX3070, XAVIER_NX
from repro.baselines.neurex import NEUREX_EDGE, NEUREX_SERVER, NeurexModel, NeurexSpec
from repro.baselines.platform import Workload
from repro.baselines.variants import VARIANTS, simulate_variant, variant_configs
from repro.errors import ConfigurationError
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG


@pytest.fixture(scope="module")
def workload(baseline_result, trained_model):
    return Workload.from_render_result(baseline_result, trained_model)


class TestWorkload:
    def test_fields_positive(self, workload):
        assert workload.embedding_flops > 0
        assert workload.embedding_bytes > 0
        assert workload.density_flops > 0
        assert workload.color_flops > 0
        assert workload.lookups > 0

    def test_total_flops_sums(self, workload):
        assert workload.total_flops == (
            workload.embedding_flops + workload.density_flops
            + workload.color_flops + workload.volume_flops
        )

    def test_asdr_workload_smaller(self, asdr_result, baseline_result,
                                   trained_model):
        asdr_wl = Workload.from_render_result(asdr_result, trained_model)
        base_wl = Workload.from_render_result(baseline_result, trained_model)
        assert asdr_wl.total_flops < base_wl.total_flops
        assert asdr_wl.color_points < base_wl.color_points


class TestGPUModel:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            GPUSpec("x", 0, 1, 1)
        with pytest.raises(ConfigurationError):
            GPUSpec("x", 1, 1, 1, mlp_efficiency=0.0)

    def test_phase_times_positive(self, workload):
        report = GPUModel(RTX3070).run(workload)
        for phase in ("encoding", "mlp", "volume"):
            assert report.phase_seconds[phase] > 0

    def test_edge_gpu_slower(self, workload):
        desktop = GPUModel(RTX3070).run(workload)
        edge = GPUModel(XAVIER_NX).run(workload)
        assert edge.time_seconds > desktop.time_seconds

    def test_energy_positive_bounded_by_tdp(self, workload):
        report = GPUModel(RTX3070).run(workload)
        assert 0 < report.energy_joules <= 220.0 * report.time_seconds * 1.01

    def test_time_scales_with_work(self, workload, asdr_result, trained_model):
        smaller = Workload.from_render_result(asdr_result, trained_model)
        gpu = GPUModel(RTX3070)
        assert gpu.run(smaller).time_seconds < gpu.run(workload).time_seconds


class TestNeurexModel:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            NeurexSpec("x", miss_rate=1.5)
        with pytest.raises(ConfigurationError):
            NeurexSpec("x", encoding_lanes=0)

    def test_faster_than_gpu(self, workload):
        """NeuRex beats the GPU — the ordering Figure 17 reports."""
        gpu = GPUModel(RTX3070).run(workload)
        nrx = NeurexModel(NEUREX_SERVER).run(workload)
        assert nrx.time_seconds < gpu.time_seconds

    def test_edge_scaling_slower(self, workload):
        server = NeurexModel(NEUREX_SERVER).run(workload)
        edge = NeurexModel(NEUREX_EDGE).run(workload)
        assert edge.time_seconds > server.time_seconds

    def test_encoding_dominated(self, workload):
        """NeuRex's remaining bottleneck is encoding (ASDR's opportunity)."""
        report = NeurexModel(NEUREX_SERVER).run(workload)
        assert report.encoding_seconds > report.mlp_seconds


class TestVariants:
    def test_three_variants(self):
        assert set(VARIANTS) == {"sa", "sram", "reram"}

    def test_variant_configs_scale_pes(self):
        configs = variant_configs("server")
        assert configs["sa"].pes_per_engine < configs["sram"].pes_per_engine
        assert configs["sram"].pes_per_engine < configs["reram"].pes_per_engine

    def test_unknown_variant_rejected(self, lego_dataset, asdr_result):
        with pytest.raises(ConfigurationError):
            simulate_variant(
                "tpu", "server", TEST_GRID,
                TEST_MODEL_CONFIG.density_mlp_config,
                TEST_MODEL_CONFIG.color_mlp_config,
                lego_dataset.cameras[0], asdr_result,
            )

    def test_ordering_matches_figure26(self, lego_dataset, asdr_result):
        """SA <= SRAM <= ReRAM in speed (Figure 26)."""
        times = {}
        for key in ("sa", "sram", "reram"):
            report = simulate_variant(
                key, "server", TEST_GRID,
                TEST_MODEL_CONFIG.density_mlp_config,
                TEST_MODEL_CONFIG.color_mlp_config,
                lego_dataset.cameras[0], asdr_result, group_size=2,
            )
            times[key] = report.time_seconds
        assert times["reram"] <= times["sram"] <= times["sa"]

    def test_reram_most_efficient(self, lego_dataset, asdr_result):
        """ReRAM <= SRAM <= SA in energy (Figure 27)."""
        energies = {}
        for key in ("sa", "sram", "reram"):
            report = simulate_variant(
                key, "server", TEST_GRID,
                TEST_MODEL_CONFIG.density_mlp_config,
                TEST_MODEL_CONFIG.color_mlp_config,
                lego_dataset.cameras[0], asdr_result, group_size=2,
            )
            energies[key] = report.energy_joules
        assert energies["reram"] <= energies["sram"] <= energies["sa"]
