"""Tests for the sequence layer: CameraPath, SequenceTrace, temporal reuse.

Covers the cross-frame contract end to end: path generation, sequence
rendering with pose replay and plan reuse (bit-identical replays for both
model backends), the temporal diff pass, sequence simulation with the
temporal vertex cache, serialisation, and the golden schema/cycle pin in
``tests/golden/sequence_trace.json``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.core.pipeline import ASDRRenderer
from repro.errors import ConfigurationError, SimulationError
from repro.exec.frame_trace import PHASE_PROBE, FrameTrace, TraceWavefront
from repro.exec.sequence import (
    SequenceTrace,
    pose_key,
    render_camera_path,
)
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.renderer import BaselineRenderer
from repro.scenes.cameras import CameraPath, camera_path, orbit_cameras
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG

GOLDEN_PATH = Path(__file__).parent / "golden" / "sequence_trace.json"


@pytest.fixture(scope="module")
def server_acc():
    return ASDRAccelerator(
        ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


class TestCameraPath:
    def test_presets_expand_to_frame_count(self):
        for preset in ("orbit", "dolly", "shake"):
            path = camera_path(preset, 5, 16, 16)
            assert len(path.cameras()) == 5

    def test_orbit_full_arc_matches_orbit_cameras(self):
        path = camera_path("orbit", 4, 24, 24, arc=1.0)
        for a, b in zip(path.cameras(), orbit_cameras(4, 24, 24)):
            assert pose_key(a) == pose_key(b)

    def test_hold_repeats_poses_bit_identically(self):
        cams = camera_path("orbit", 6, 16, 16, hold=2).cameras()
        assert pose_key(cams[0]) == pose_key(cams[1])
        assert pose_key(cams[2]) == pose_key(cams[3])
        assert pose_key(cams[0]) != pose_key(cams[2])

    def test_shake_poses_repeat_every_period(self):
        cams = camera_path("shake", 8, 16, 16, period=3).cameras()
        assert pose_key(cams[0]) == pose_key(cams[3])
        assert pose_key(cams[1]) == pose_key(cams[4])
        assert pose_key(cams[0]) != pose_key(cams[1])

    def test_dolly_moves_toward_center(self):
        cams = camera_path("dolly", 4, 16, 16, travel=0.5).cameras()
        center = np.array([0.5, 0.5, 0.5])
        dists = [np.linalg.norm(c.position - center) for c in cams]
        assert all(a > b for a, b in zip(dists, dists[1:]))

    def test_cache_key_stable_and_distinct(self):
        a = camera_path("orbit", 4, 16, 16, arc=0.1)
        b = camera_path("orbit", 4, 16, 16, arc=0.1)
        c = camera_path("orbit", 4, 16, 16, arc=0.2)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()
        assert len({a.cache_key(), b.cache_key(), c.cache_key()}) == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            camera_path("spiral", 4, 16, 16)
        with pytest.raises(ConfigurationError):
            camera_path("orbit", 0, 16, 16)
        with pytest.raises(ConfigurationError):
            camera_path("orbit", 4, 16, 16, hold=0)
        with pytest.raises(ConfigurationError):
            camera_path("dolly", 4, 16, 16, travel=1.0)


class TestSequenceTraceValidation:
    def _frame(self, pixels=4):
        return FrameTrace(num_pixels=pixels, full_budget=2)

    def test_requires_frames(self):
        with pytest.raises(SimulationError):
            SequenceTrace(frames=[])

    def test_replay_must_point_backwards(self):
        f = self._frame()
        with pytest.raises(SimulationError):
            SequenceTrace(frames=[f, f], replays=[None, 2], planned=[True, False])

    def test_replay_must_share_trace_object(self):
        with pytest.raises(SimulationError):
            SequenceTrace(
                frames=[self._frame(), self._frame()],
                replays=[None, 0],
                planned=[True, False],
            )

    def test_resolution_must_match(self):
        with pytest.raises(SimulationError):
            SequenceTrace(frames=[self._frame(4), self._frame(9)])

    def test_defaults_fill_replays_and_planned(self):
        seq = SequenceTrace(frames=[self._frame()])
        assert seq.replays == [None]
        assert seq.planned == [True]
        assert seq.num_frames == 1


class TestPoseReplayEquivalence:
    """Satellite acceptance: rendering frame N fresh vs replaying it via
    SequenceTrace reuse is bit-identical, for both model backends."""

    def _check_replay(self, model):
        renderer = ASDRRenderer(model, num_samples=16)
        # shake/period=3 revisits the base pose at frame 3.
        cams = camera_path("shake", 4, 16, 16, period=3).cameras()
        assert pose_key(cams[3]) == pose_key(cams[0])
        assert pose_key(cams[1]) != pose_key(cams[0])
        seq = renderer.render_sequence(cams, probe_interval=0)
        assert seq.trace.replays == [None, None, None, 0]
        assert seq.trace.planned == [True, False, False, False]

        fresh = renderer.render_image(cams[3])
        replayed = seq.results[3]
        np.testing.assert_array_equal(replayed.image, fresh.image)
        assert replayed.density_points == fresh.density_points
        assert replayed.color_points == fresh.color_points
        assert replayed.interpolated_points == fresh.interpolated_points
        np.testing.assert_array_equal(
            replayed.sample_counts, fresh.sample_counts
        )

    def test_instant_ngp_replay_bit_identical(self, trained_model):
        self._check_replay(trained_model)

    def test_tensorf_replay_bit_identical(self, trained_tensorf):
        self._check_replay(trained_tensorf)

    def test_baseline_driver_replay_bit_identical(self, trained_model):
        renderer = BaselineRenderer(trained_model, num_samples=16)
        cams = camera_path("orbit", 4, 16, 16, hold=2).cameras()
        seq = render_camera_path(renderer.render_image, cams, kind="baseline")
        assert seq.trace.replays == [None, 0, None, 2]
        fresh = renderer.render_image(cams[1])
        np.testing.assert_array_equal(seq.results[1].image, fresh.image)
        assert seq.results[1].points_total == fresh.points_total

    def test_reuse_poses_off_renders_every_frame(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        cams = camera_path("orbit", 3, 16, 16, hold=3).cameras()
        seq = renderer.render_sequence(cams, reuse_poses=False)
        assert seq.trace.replays == [None, None, None]
        assert len({id(t) for t in seq.trace.frames}) == 3

    def test_trace_less_render_fn_rejected(self, lego_dataset):
        class Bare:
            image = np.zeros((16, 16, 3))
            trace = None

        with pytest.raises(SimulationError, match="trace-carrying"):
            render_camera_path(
                lambda camera: Bare(),
                camera_path("orbit", 2, 16, 16).cameras(),
            )


class TestPlanReuse:
    def test_reused_frames_skip_phase1(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        cams = camera_path("orbit", 3, 16, 16, arc=0.05).cameras()
        seq = renderer.render_sequence(cams, probe_interval=0)
        assert seq.trace.planned == [True, False, False]
        for k in (1, 2):
            trace = seq.trace.frames[k]
            assert trace.difficulty_evals == 0
            assert all(wf.phase != PHASE_PROBE for wf in trace.wavefronts)
            assert seq.results[k].probe_points == 0
            # The keyframe's budget map steers the reused frames.
            np.testing.assert_array_equal(
                seq.results[k].plan.budgets, seq.results[0].plan.budgets
            )

    def test_probe_interval_cadence(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        cams = camera_path("orbit", 4, 16, 16, arc=0.05).cameras()
        seq = renderer.render_sequence(cams, probe_interval=2)
        assert seq.trace.planned == [True, False, True, False]

    def test_probe_every_frame_disables_reuse(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        cams = camera_path("orbit", 3, 16, 16, arc=0.05).cameras()
        seq = renderer.render_sequence(cams, probe_interval=1)
        assert seq.trace.planned == [True, True, True]

    def test_plan_resolution_mismatch_rejected(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        plan = renderer.render_image(
            camera_path("orbit", 1, 16, 16).cameras()[0]
        ).plan
        with pytest.raises(ConfigurationError):
            renderer.render_with_plan(
                camera_path("orbit", 1, 24, 24).cameras()[0], plan
            )


class TestTemporalDeltas:
    def test_deltas_bounded_and_coherent(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        near = renderer.render_sequence(
            camera_path("orbit", 3, 16, 16, arc=0.02).cameras(),
            probe_interval=0,
        ).trace
        far = renderer.render_sequence(
            camera_path("orbit", 3, 16, 16, arc=0.9).cameras(),
            probe_interval=0,
        ).trace
        res = 16
        d_near = near.temporal_deltas([res])
        d_far = far.temporal_deltas([res])
        assert len(d_near) == 2
        for d in d_near + d_far:
            assert 0.0 <= d.ray_budget_overlap <= 1.0
            assert 0.0 <= d.corner_overlap[res] <= 1.0
            assert 0.0 <= d.stream_overlap[res] <= 1.0
        # A tight arc keeps the voxel working set; a wide arc does not.
        mean_near = np.mean([d.stream_overlap[res] for d in d_near])
        mean_far = np.mean([d.stream_overlap[res] for d in d_far])
        assert mean_near > mean_far

    def test_deltas_cached(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        trace = renderer.render_sequence(
            camera_path("orbit", 2, 16, 16, arc=0.05).cameras()
        ).trace
        assert trace.temporal_deltas([8]) is trace.temporal_deltas([8])

    def test_single_frame_has_no_deltas(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        trace = renderer.render_sequence(
            camera_path("orbit", 1, 16, 16).cameras()
        ).trace
        assert trace.temporal_deltas([8]) == []

    def test_identical_pose_hold_scores_full_overlap(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        trace = renderer.render_sequence(
            camera_path("orbit", 2, 16, 16, hold=2).cameras()
        ).trace
        assert trace.replays == [None, 0]
        (delta,) = trace.temporal_deltas([8])
        assert delta.ray_budget_overlap == 1.0
        assert delta.corner_overlap[8] == 1.0
        assert delta.stream_overlap[8] == 1.0

    def test_camera_cut_zeroes_ray_budget_overlap(self):
        """A hard cut that rewrites every pixel's budget: nothing of the
        previous frame's execution structure survives the diff."""
        camera = camera_path("orbit", 1, 8, 8).cameras()[0]
        before = FrameTrace.from_budgets(camera, np.full(64, 4))
        after = FrameTrace.from_budgets(camera, np.full(64, 8))
        seq = SequenceTrace(frames=[before, after])
        (delta,) = seq.temporal_deltas([8])
        assert delta.ray_budget_overlap == 0.0
        # Same rays through the same scene: the voxel working set still
        # overlaps even though every per-pixel budget changed.
        assert delta.corner_overlap[8] > 0.0


class TestSimulateSequence:
    @pytest.fixture(scope="class")
    def orbit_seq(self, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        cams = camera_path("orbit", 3, 16, 16, arc=0.05).cameras()
        return renderer.render_sequence(cams, probe_interval=0).trace

    def test_temporal_cache_hits_and_saves_cycles(self, server_acc, orbit_seq):
        with_cache = server_acc.simulate_sequence(orbit_seq, group_size=2)
        without = server_acc.simulate_sequence(
            orbit_seq, group_size=2, temporal=False
        )
        assert with_cache.temporal_hits > 0
        assert with_cache.frames[0].encoding.temporal_hits == 0
        assert with_cache.total_cycles <= without.total_cycles
        # The cache only removes crossbar reads; the workload is unchanged.
        assert with_cache.merged().mlp.density_points == \
            without.merged().mlp.density_points
        assert with_cache.merged().encoding.xbar_accesses < \
            without.merged().encoding.xbar_accesses

    def test_replayed_frame_priced_at_scanout(self, server_acc, trained_model):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        cams = camera_path("orbit", 2, 16, 16, hold=2).cameras()
        seq = renderer.render_sequence(cams).trace
        report = server_acc.simulate_sequence(seq, group_size=2)
        assert report.replayed == [False, True]
        replay = report.frames[1]
        assert replay.total_cycles == replay.bus_cycles
        assert replay.mlp.density_points == 0
        assert replay.total_cycles < report.frames[0].total_cycles

    def test_deterministic_across_warm_replays(self, server_acc, orbit_seq):
        first = server_acc.simulate_sequence(orbit_seq, group_size=2)
        second = server_acc.simulate_sequence(orbit_seq, group_size=2)
        assert [f.total_cycles for f in first.frames] == \
            [f.total_cycles for f in second.frames]
        assert first.temporal_hits == second.temporal_hits

    def test_capacity_bound_reduces_hits(self, server_acc, orbit_seq):
        unbounded = server_acc.simulate_sequence(orbit_seq, group_size=2)
        tiny = server_acc.simulate_sequence(
            orbit_seq, group_size=2, temporal_capacity=4
        )
        assert tiny.temporal_hits < unbounded.temporal_hits

    def test_rejects_non_sequence(self, server_acc):
        with pytest.raises(SimulationError):
            server_acc.simulate_sequence("not a sequence")

    def test_memo_isolated_across_address_mappings(self, server_acc, orbit_seq):
        """Two engines with different grids simulating one memoised
        sequence must not share temporal hit masks (regression: the mask
        memo key once omitted the address-stream identity)."""
        other_grid = HashGridConfig(
            num_levels=4, table_size=2**10, base_resolution=6,
            max_resolution=12,
        )
        other_acc = ASDRAccelerator(
            ArchConfig.server(),
            other_grid,
            TEST_MODEL_CONFIG.density_mlp_config,
            TEST_MODEL_CONFIG.color_mlp_config,
        )
        server_acc.simulate_sequence(orbit_seq, group_size=2)  # warm memo
        warm = other_acc.simulate_sequence(orbit_seq, group_size=2)
        cold_seq = SequenceTrace.from_dict(orbit_seq.to_dict())
        cold = other_acc.simulate_sequence(cold_seq, group_size=2)
        assert warm.temporal_hits == cold.temporal_hits
        assert [f.total_cycles for f in warm.frames] == \
            [f.total_cycles for f in cold.frames]

    def test_report_aggregates(self, server_acc, orbit_seq):
        report = server_acc.simulate_sequence(orbit_seq, group_size=2)
        assert report.num_frames == 3
        assert report.total_cycles == sum(
            f.total_cycles for f in report.frames
        )
        assert report.amortised_cycles == pytest.approx(
            report.total_cycles / 3
        )
        assert report.energy_joules > 0
        assert 0.0 < report.temporal_hit_rate < 1.0


class TestSerialization:
    def test_sequence_round_trip(self, trained_model, server_acc):
        renderer = ASDRRenderer(trained_model, num_samples=16)
        path = camera_path("shake", 3, 16, 16, period=2)
        seq = renderer.render_sequence(
            path.cameras(), probe_interval=0, path_key=path.cache_key()
        ).trace
        clone = SequenceTrace.from_dict(seq.to_dict())
        assert clone.replays == seq.replays
        assert clone.planned == seq.planned
        assert clone.path_key == seq.path_key  # typed round trip
        assert clone.num_frames == seq.num_frames
        for a, b in zip(clone.frames, seq.frames):
            assert a.density_points == b.density_points
            assert len(a.wavefronts) == len(b.wavefronts)
            for wa, wb in zip(a.wavefronts, b.wavefronts):
                np.testing.assert_array_equal(wa.points, wb.points)
        # The clone simulates to the same cycles as the original.
        original = server_acc.simulate_sequence(seq, group_size=2)
        replayed = server_acc.simulate_sequence(clone, group_size=2)
        assert [f.total_cycles for f in original.frames] == \
            [f.total_cycles for f in replayed.frames]

    def test_unknown_schema_rejected(self):
        with pytest.raises(SimulationError):
            SequenceTrace.from_dict({"schema": "sequence_trace/v999"})


def _golden_sequence() -> SequenceTrace:
    """A tiny hand-built two-frame sequence (deterministic integers and
    exact binary-fraction coordinates; no rendering involved)."""

    def frame(shift: float) -> FrameTrace:
        points = (
            np.array(
                [
                    [4, 4, 4], [5, 4, 4], [6, 5, 4],      # ray 0 (3 samples)
                    [8, 8, 8], [9, 8, 8],                  # ray 1 (2 samples)
                    [12, 12, 12],                          # ray 3 (1 sample)
                ],
                dtype=np.float64,
            )
            + shift
        ) / 16.0
        wavefront = TraceWavefront(
            phase="main",
            budget=3,
            ray_ids=np.arange(4, dtype=np.int64),
            hit=np.array([True, True, False, True]),
            used=np.array([3, 2, 0, 1], dtype=np.int64),
            color_used=np.array([2, 1, 0, 1], dtype=np.int64),
            points=points,
        )
        return FrameTrace(
            num_pixels=4,
            full_budget=3,
            kind="asdr",
            group_size=2,
            difficulty_evals=0,
            wavefronts=[wavefront],
        )

    return SequenceTrace(
        frames=[frame(0.0), frame(1.0)],
        path_key=("golden",),
        kind="asdr",
        planned=[True, False],
    )


def _golden_accelerator() -> ASDRAccelerator:
    from repro.nerf.model import InstantNGPConfig

    grid = HashGridConfig(
        num_levels=2, table_size=2**8, base_resolution=4, max_resolution=8
    )
    cfg = InstantNGPConfig(
        grid=grid, density_hidden_dim=16, color_hidden_dim=16,
        color_num_hidden=1,
    )
    return ASDRAccelerator(
        ArchConfig.server(), grid, cfg.density_mlp_config, cfg.color_mlp_config
    )


class TestGoldenSequenceTrace:
    """Golden regression: the serialised IR schema and the cycles the
    simulator charges for a pinned tiny sequence.  A mismatch means the IR
    or the pricing model changed — update ``tests/golden/
    sequence_trace.json`` deliberately (see ``regenerate`` below) and call
    the change out in the PR.
    """

    @staticmethod
    def regenerate() -> dict:
        seq = _golden_sequence()
        report = _golden_accelerator().simulate_sequence(seq)
        return {
            "sequence": seq.to_dict(),
            "per_frame_cycles": [f.total_cycles for f in report.frames],
            "temporal_hits": report.temporal_hits,
        }

    def test_schema_and_cycles_match_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        current = self.regenerate()
        assert current["sequence"] == golden["sequence"], (
            "SequenceTrace serialisation schema/content drifted from the "
            "golden file — if intentional, regenerate it"
        )
        assert current["per_frame_cycles"] == golden["per_frame_cycles"], (
            "simulated per-frame cycles drifted from the golden file"
        )
        assert current["temporal_hits"] == golden["temporal_hits"]

    def test_golden_round_trips_through_serialisation(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        seq = SequenceTrace.from_dict(golden["sequence"])
        report = _golden_accelerator().simulate_sequence(seq)
        assert [f.total_cycles for f in report.frames] == \
            golden["per_frame_cycles"]


class TestVideoExperiment:
    @pytest.fixture(scope="class")
    def small_wb(self, tmp_path_factory):
        from repro.experiments.workbench import Workbench, WorkbenchConfig

        return Workbench(
            WorkbenchConfig(
                width=16, height=16, num_samples=12, train_steps=40,
                train_batch=256,
                cache_dir=str(tmp_path_factory.mktemp("models")),
            )
        )

    def test_video_rows_structure_and_reuse(self, small_wb):
        from repro.experiments.video import video_rows

        path = camera_path("orbit", 3, 16, 16, arc=0.05, hold=1)
        rows = video_rows(small_wb, scene="lego", path=path)
        assert len(rows) == 4  # 3 frames + amortised
        assert rows[0]["mode"] == "probe"
        assert rows[1]["mode"] == "reuse"
        amortised = rows[-1]
        assert amortised["frame"] == "amortised"
        assert amortised["video_kcycles"] <= amortised["asdr_kcycles"] * 1.05
        assert amortised["temporal_hit_pct"] > 0
        assert amortised["baseline_kcycles"] > amortised["asdr_kcycles"]

    def test_video_with_replay_amortises_hard(self, small_wb):
        from repro.experiments.video import video_rows

        path = camera_path("orbit", 4, 16, 16, arc=0.05, hold=2)
        rows = video_rows(small_wb, scene="lego", path=path)
        modes = [r["mode"] for r in rows[:-1]]
        assert modes.count("replay") == 2
        assert rows[-1]["video_speedup"] > 1.5

    def test_registered_in_harness(self):
        from repro.experiments.harness import load_experiments

        assert "video" in load_experiments()

    def test_cli_video_smoke(self, small_wb, capsys, monkeypatch):
        from repro import cli

        monkeypatch.setattr(
            "repro.cli.Workbench", lambda: small_wb
        )
        assert cli.main(
            ["video", "lego", "--frames", "2", "--size", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "amortised" in out

    def test_cli_video_unknown_scene(self, capsys):
        from repro import cli

        assert cli.main(["video", "nope"]) == 2
        assert "unknown scene" in capsys.readouterr().err


class TestWorkbenchSequenceMemo:
    def test_sequence_memoised_under_path_key(self, tmp_path):
        from repro.experiments.workbench import Workbench, WorkbenchConfig

        wb = Workbench(
            WorkbenchConfig(width=16, height=16, num_samples=8,
                            train_steps=30, train_batch=256,
                            cache_dir=str(tmp_path))
        )
        path_a = camera_path("orbit", 2, 16, 16, arc=0.05)
        path_b = camera_path("orbit", 2, 16, 16, arc=0.05)
        path_c = camera_path("orbit", 2, 16, 16, arc=0.5)
        s1 = wb.sequence_render("lego", path_a)
        s2 = wb.sequence_render("lego", path_b)
        s3 = wb.sequence_render("lego", path_c)
        assert s1 is s2  # equal-but-distinct paths hit the memo
        assert s1 is not s3
        assert wb.sequence_trace("lego", path_a) is s1.trace
        # Different reuse knobs are distinct sequence cache entries.
        s4 = wb.sequence_render("lego", path_a, probe_interval=1)
        assert s4 is not s1
