"""Multi-tenant serving: policy invariants, conservation, determinism.

These tests drive :class:`repro.serving.server.SequenceServer` with small
synthetic sequences (budget-map traces on 8x8 cameras) so the scheduler's
invariants are pinned without rendering real scenes:

* **fairness** — under round-robin no client starves: delivered frame
  counts across ready clients never diverge by more than one;
* **conservation** — interleaved busy cycles equal the sum of per-client
  service cycles, and with sharing disabled each client is priced exactly
  as if it ran alone;
* **determinism** — serving the same submissions twice yields identical
  reports for every policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.cim.cache import TemporalVertexCache
from repro.errors import ConfigurationError
from repro.exec.frame_trace import FrameTrace
from repro.exec.scheduler import (
    WORK_PROBE,
    WORK_REPLAY,
    WORK_REUSE,
    TemporalCachePartitions,
    sequence_work_items,
)
from repro.exec.sequence import SequenceTrace, pose_key
from repro.scenes.cameras import camera_path
from repro.serving.policies import (
    DeadlineAwarePolicy,
    FIFOPolicy,
    PendingFrame,
    RoundRobinPolicy,
    make_policy,
)
from repro.serving.report import jain_fairness
from repro.serving.request import ClientRequest
from repro.serving.server import SequenceServer
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG

SIZE = 8
FRAMES = 4


@pytest.fixture(scope="module")
def accelerator():
    return ASDRAccelerator(
        ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


def synthetic_sequence(path, budget: int = 6) -> SequenceTrace:
    """A budget-map SequenceTrace for ``path`` with pose replays detected
    and Phase I marked on the first frame only (plan-reuse structure)."""
    frames, replays, seen = [], [], {}
    for camera in path.cameras():
        key = pose_key(camera)
        if key in seen:
            frames.append(frames[seen[key]])
            replays.append(seen[key])
            continue
        budgets = np.full(camera.width * camera.height, budget, dtype=np.int64)
        seen[key] = len(frames)
        frames.append(FrameTrace.from_budgets(camera, budgets))
        replays.append(None)
    planned = [k == 0 and r is None for k, r in enumerate(replays)]
    return SequenceTrace(
        frames=frames,
        path_key=path.cache_key(),
        kind="asdr",
        replays=replays,
        planned=planned,
    )


def _request(client_id: str, path, **kwargs) -> ClientRequest:
    return ClientRequest(
        client_id=client_id, scene="synthetic", path=path, **kwargs
    )


def _distinct_paths(n: int):
    """Orbit arcs far enough apart that no poses coincide."""
    return [
        camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3 + 0.1 * i)
        for i in range(n)
    ]


def _server(accelerator, requests, **kwargs) -> SequenceServer:
    server = SequenceServer(accelerator, **kwargs)
    for request in requests:
        server.submit(request, synthetic_sequence(request.path))
    return server


# ----------------------------------------------------------------------
# Work items and cache partitions (exec layer)
# ----------------------------------------------------------------------
class TestWorkItems:
    def test_modes_follow_trace_structure(self):
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3, hold=2)
        trace = synthetic_sequence(path)
        items = sequence_work_items("c", trace)
        assert [i.frame for i in items] == list(range(FRAMES))
        assert items[0].mode == WORK_PROBE
        assert items[1].mode == WORK_REPLAY  # hold=2 repeats each pose
        assert items[2].mode == WORK_REUSE
        assert items[0].cost_hint > 0
        assert items[1].cost_hint == 0

    def test_partitions_split_capacity(self):
        parts = TemporalCachePartitions(["a", "b", "c"], total_capacity=90)
        assert parts.per_tenant_capacity == 30
        assert parts.cache_for("a") is not parts.cache_for("b")
        assert parts.cache_for("a") is parts.cache_for("a")

    def test_partitions_unbounded_by_default(self):
        parts = TemporalCachePartitions(["a", "b"])
        assert parts.per_tenant_capacity is None

    def test_partitions_reject_unknown_tenant(self):
        parts = TemporalCachePartitions(["a"])
        with pytest.raises(ConfigurationError):
            parts.cache_for("ghost")

    def test_partitions_reject_duplicates_and_overcommit(self):
        with pytest.raises(ConfigurationError):
            TemporalCachePartitions(["a", "a"])
        with pytest.raises(ConfigurationError):
            TemporalCachePartitions(["a", "b", "c"], total_capacity=2)


# ----------------------------------------------------------------------
# Policy selection (pure logic)
# ----------------------------------------------------------------------
def _pending(order, completed=0, est=100.0, deadline=None, mode=WORK_PROBE,
             arrival=0):
    from repro.exec.scheduler import FrameWorkItem

    return PendingFrame(
        item=FrameWorkItem(client=f"c{order}", frame=completed, mode=mode,
                           cost_hint=int(est)),
        order=order,
        arrival_cycle=arrival,
        completed=completed,
        total_frames=8,
        est_cycles=est,
        deadline_cycle=deadline,
    )


class TestPolicies:
    def test_fifo_prefers_earliest_arrival(self):
        pending = [_pending(0, arrival=50), _pending(1, arrival=0)]
        assert FIFOPolicy().select(pending, clock=100) == 1

    def test_round_robin_prefers_least_served(self):
        pending = [_pending(0, completed=3), _pending(1, completed=1)]
        assert RoundRobinPolicy().select(pending, clock=0) == 1

    def test_deadline_prefers_least_slack(self):
        pending = [
            _pending(0, est=100.0, deadline=10_000.0),
            _pending(1, est=100.0, deadline=500.0),
        ]
        assert DeadlineAwarePolicy().select(pending, clock=0) == 1

    def test_deadline_deprioritises_cheap_frames(self):
        # Same deadline: the cheap replay keeps its window as slack, the
        # expensive probe does not, so the probe runs first.
        pending = [
            _pending(0, est=10.0, deadline=1_000.0, mode=WORK_REPLAY),
            _pending(1, est=900.0, deadline=1_000.0, mode=WORK_PROBE),
        ]
        assert DeadlineAwarePolicy().select(pending, clock=0) == 1

    def test_make_policy_names(self):
        for name in ("fifo", "round_robin", "deadline"):
            assert make_policy(name).name == name
        with pytest.raises(ConfigurationError):
            make_policy("lottery")


# ----------------------------------------------------------------------
# Server invariants
# ----------------------------------------------------------------------
class TestServerInvariants:
    def test_round_robin_never_starves(self, accelerator):
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(3))
        ]
        server = _server(accelerator, requests, shared_content=False)
        report = server.serve("round_robin")
        counts = {r.client_id: 0 for r in requests}
        total = {r.client_id: FRAMES for r in requests}
        for step in report.schedule:
            unfinished = [c for c in counts if counts[c] < total[c]]
            spread = max(counts[c] for c in unfinished) - min(
                counts[c] for c in unfinished
            )
            assert spread <= 1, f"client starved before {step}"
            assert counts[step.client] == min(counts[c] for c in unfinished)
            counts[step.client] += 1
        assert counts == total

    def test_conservation_of_cycles(self, accelerator):
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(3))
        ]
        server = _server(accelerator, requests, shared_content=False)
        for policy in ("fifo", "round_robin", "deadline"):
            report = server.serve(policy)
            assert report.busy_cycles == sum(
                c.service_cycles for c in report.clients
            )
            assert report.busy_cycles == sum(s.cycles for s in report.schedule)
            # Simultaneous arrivals: the clock never idles.
            assert report.makespan_cycles == report.busy_cycles
            # Private temporal-cache partitions price every client exactly
            # as it would run alone, so with content sharing off the
            # interleaved total equals back-to-back.
            for client in report.clients:
                assert client.service_cycles == client.alone_cycles
            assert report.busy_cycles == report.back_to_back_cycles

    def test_cross_replay_skips_do_not_reuse_stale_temporal_masks(
        self, accelerator
    ):
        # Client B probes every other frame of the same path client A
        # probes fully, so B's keyframes are served from A's executed
        # content and B's own temporal cache never sees them.  B's later
        # fresh frames then compare against an *older* resident set than
        # B's alone run did — the memoised hit masks (populated by the
        # alone run) must not leak across that difference.
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.6)
        seq_a = synthetic_sequence(path)
        seq_a.planned = [r is None for r in seq_a.replays]  # probe all
        seq_b = synthetic_sequence(path)
        seq_b.planned = [k % 2 == 0 for k in range(FRAMES)]  # probe 0, 2

        server = SequenceServer(accelerator)
        server.submit(_request("a", path), seq_a)
        server.submit(_request("b", path, probe_interval=2), seq_b)
        report = server.serve("fifo")
        served = {
            s.frame: s for s in report.schedule if s.client == "b"
        }
        assert served[0].cross_replay and served[2].cross_replay
        assert not served[1].cross_replay and not served[3].cross_replay

        # Ground truth: a cold trace (no memo state) simulated with the
        # exact skip pattern the serving schedule executed — scan-out for
        # the cross-replayed keyframes, fresh simulation (with the
        # correspondingly older resident set) for frames 1 and 3.  At this
        # scale cycles are MLP-bound, so the temporal-mask difference
        # shows up in encoding busy time and therefore energy.
        cold = SequenceTrace.from_dict(seq_b.to_dict())
        cold.planned = list(seq_b.planned)
        cache = TemporalVertexCache()
        truth_energy = 0.0
        truth_cycles = {}
        for k in range(FRAMES):
            if k in (0, 2):
                rep = accelerator.simulate_scanout(cold.frames[k])
            else:
                rep = accelerator.simulate_sequence_frame(
                    cold, k, temporal=cache
                )
                truth_cycles[k] = rep.total_cycles
            truth_energy += rep.energy_joules
        for k in (1, 3):
            assert served[k].cycles == truth_cycles[k]
        assert report.client("b").energy_joules == pytest.approx(
            truth_energy, rel=1e-12
        ), "stale temporal-mask reuse skewed the served energy attribution"

    def test_bounded_capacity_models_contention(self, accelerator):
        # A bounded temporal budget splits capacity among tenants, so a
        # served client holds less cache than it would alone and may pay
        # more than the back-to-back reference (which uses the full
        # budget).  Attribution conservation must hold regardless.
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(3))
        ]
        server = _server(
            accelerator, requests, shared_content=False, temporal_capacity=300
        )
        report = server.serve("round_robin")
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )
        # Partitioned clients never price *below* their full-cache alone
        # run: losing cache capacity cannot reduce cycles.
        for client in report.clients:
            assert client.service_cycles >= client.alone_cycles

    def test_deterministic_reports(self, accelerator):
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(3))
        ]
        server = _server(accelerator, requests)
        for policy in ("fifo", "round_robin", "deadline"):
            assert server.serve(policy).to_dict() == server.serve(policy).to_dict()

    def test_fifo_runs_clients_back_to_back(self, accelerator):
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(2))
        ]
        server = _server(accelerator, requests, shared_content=False)
        report = server.serve("fifo")
        order = [s.client for s in report.schedule]
        assert order == ["c0"] * FRAMES + ["c1"] * FRAMES

    def test_twin_clients_served_from_shared_content(self, accelerator):
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        requests = [_request("orig", path), _request("twin", path)]
        server = _server(accelerator, requests)
        report = server.serve("fifo")
        twin = report.client("twin")
        assert twin.cross_replays == FRAMES
        assert twin.service_cycles < report.client("orig").service_cycles
        assert report.busy_cycles < report.back_to_back_cycles

    def test_shared_pose_keyframe_cross_replays(self, accelerator):
        # Orbit and dolly paths share their first pose bit-identically, and
        # both probe it as a keyframe -> the later client's probe is served
        # at scan-out cost.
        orbit = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        dolly = camera_path("dolly", FRAMES, SIZE, SIZE, travel=0.3)
        assert pose_key(orbit.cameras()[0]) == pose_key(dolly.cameras()[0])
        server = _server(
            accelerator, [_request("a", orbit), _request("b", dolly)]
        )
        report = server.serve("fifo")
        assert report.client("b").cross_replays == 1
        assert report.busy_cycles < report.back_to_back_cycles

    def test_arrivals_gate_scheduling(self, accelerator):
        paths = _distinct_paths(2)
        early = _request("early", paths[0])
        late = _request("late", paths[1], arrival_cycle=10**9)
        server = _server(accelerator, [early, late], shared_content=False)
        report = server.serve("round_robin")
        late_frames = [s for s in report.schedule if s.client == "late"]
        assert all(s.start_cycle >= 10**9 for s in late_frames)
        # The accelerator idled between the early client finishing and the
        # late arrival: makespan exceeds busy cycles.
        assert report.makespan_cycles > report.busy_cycles

    def test_submission_validation(self, accelerator):
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        server = SequenceServer(accelerator)
        server.submit(_request("a", path), synthetic_sequence(path))
        with pytest.raises(ConfigurationError):
            server.submit(_request("a", path), synthetic_sequence(path))
        other = camera_path("orbit", FRAMES + 1, SIZE, SIZE, arc=0.3)
        with pytest.raises(ConfigurationError):
            server.submit(_request("b", path), synthetic_sequence(other))
        with pytest.raises(ConfigurationError):
            server.submit(_request("c", path), "not a sequence")

    def test_serve_requires_clients(self, accelerator):
        with pytest.raises(ConfigurationError):
            SequenceServer(accelerator).serve("fifo")


# ----------------------------------------------------------------------
# Requests and report arithmetic
# ----------------------------------------------------------------------
class TestRequestAndReport:
    def test_request_validation(self):
        path = camera_path("orbit", 2, SIZE, SIZE)
        with pytest.raises(ConfigurationError):
            ClientRequest(client_id="", scene="s", path=path)
        with pytest.raises(ConfigurationError):
            ClientRequest(client_id="c", scene="s", path=path, probe_interval=-1)
        with pytest.raises(ConfigurationError):
            ClientRequest(client_id="c", scene="s", path=path, arrival_cycle=-5)
        with pytest.raises(ConfigurationError):
            ClientRequest(
                client_id="c", scene="s", path=path, frame_interval_cycles=0
            )

    def test_content_key_identifies_twins(self):
        path = camera_path("orbit", 2, SIZE, SIZE)
        a = ClientRequest(client_id="a", scene="s", path=path)
        b = ClientRequest(client_id="b", scene="s", path=path)
        c = ClientRequest(client_id="c", scene="s", path=path, probe_interval=2)
        assert a.content_key() == b.content_key()
        assert a.content_key() != c.content_key()

    def test_jain_fairness_bounds(self):
        assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)
        skewed = jain_fairness([10.0, 1.0, 1.0])
        assert 0.0 < skewed < 1.0
        assert jain_fairness([]) == 1.0
