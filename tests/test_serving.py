"""Multi-tenant serving: policy invariants, conservation, determinism.

These tests drive :class:`repro.serving.server.SequenceServer` with small
synthetic sequences (budget-map traces on 8x8 cameras) so the scheduler's
invariants are pinned without rendering real scenes:

* **fairness** — under round-robin no client starves: delivered frame
  counts across ready clients never diverge by more than one;
* **conservation** — interleaved busy cycles equal the sum of per-client
  service cycles, and with sharing disabled each client is priced exactly
  as if it ran alone;
* **determinism** — serving the same submissions twice yields identical
  reports for every policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.cim.cache import TemporalVertexCache
from repro.errors import ConfigurationError
from repro.exec.frame_trace import FrameTrace
from repro.exec.scheduler import (
    WORK_PROBE,
    WORK_REPLAY,
    WORK_REUSE,
    TemporalCachePartitions,
    sequence_work_items,
)
from repro.exec.sequence import SequenceTrace, pose_key
from repro.scenes.cameras import camera_path
from repro.serving.policies import (
    ALL_POLICY_NAMES,
    PREEMPTIVE_POLICY_NAMES,
    DeadlineAwarePolicy,
    FIFOPolicy,
    PendingFrame,
    PreemptiveDeadlinePolicy,
    PreemptiveRoundRobinPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.obs.events import (
    EV_ADMISSION_REJECT,
    EV_DEGRADE,
    EV_QUANTUM_TUNE,
    EV_SHED,
)
from repro.obs.recorder import MemoryRecorder
from repro.serving.report import jain_fairness
from repro.serving.request import ClientRequest
from repro.serving.server import (
    SequenceServer,
    WavefrontCostModel,
    _LRUCache,
)
from repro.serving.slo import (
    AUTO_QUANTUM,
    AdmissionError,
    SLOConfig,
    weighted_slack,
)
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG

SIZE = 8
FRAMES = 4


@pytest.fixture(scope="module")
def accelerator():
    return ASDRAccelerator(
        ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


def synthetic_sequence(path, budget: int = 6, varied: bool = False) -> SequenceTrace:
    """A budget-map SequenceTrace for ``path`` with pose replays detected
    and Phase I marked on the first frame only (plan-reuse structure).
    ``varied`` spreads the rays over several budget groups, so each frame
    splits into multiple wavefront steps (preemption needs suspend
    points)."""
    frames, replays, seen = [], [], {}
    for camera in path.cameras():
        key = pose_key(camera)
        if key in seen:
            frames.append(frames[seen[key]])
            replays.append(seen[key])
            continue
        n = camera.width * camera.height
        if varied:
            budgets = (1 + (np.arange(n) % 6) * 2).astype(np.int64)
        else:
            budgets = np.full(n, budget, dtype=np.int64)
        seen[key] = len(frames)
        frames.append(FrameTrace.from_budgets(camera, budgets))
        replays.append(None)
    planned = [k == 0 and r is None for k, r in enumerate(replays)]
    return SequenceTrace(
        frames=frames,
        path_key=path.cache_key(),
        kind="asdr",
        replays=replays,
        planned=planned,
    )


def _request(client_id: str, path, **kwargs) -> ClientRequest:
    return ClientRequest(
        client_id=client_id, scene="synthetic", path=path, **kwargs
    )


def _distinct_paths(n: int):
    """Orbit arcs far enough apart that no poses coincide."""
    return [
        camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3 + 0.1 * i)
        for i in range(n)
    ]


def _server(accelerator, requests, varied=False, **kwargs) -> SequenceServer:
    server = SequenceServer(accelerator, **kwargs)
    for request in requests:
        server.submit(
            request, synthetic_sequence(request.path, varied=varied)
        )
    return server


# ----------------------------------------------------------------------
# Work items and cache partitions (exec layer)
# ----------------------------------------------------------------------
class TestWorkItems:
    def test_modes_follow_trace_structure(self):
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3, hold=2)
        trace = synthetic_sequence(path)
        items = sequence_work_items("c", trace)
        assert [i.frame for i in items] == list(range(FRAMES))
        assert items[0].mode == WORK_PROBE
        assert items[1].mode == WORK_REPLAY  # hold=2 repeats each pose
        assert items[2].mode == WORK_REUSE
        assert items[0].cost_hint > 0
        assert items[1].cost_hint == 0

    def test_partitions_split_capacity(self):
        parts = TemporalCachePartitions(["a", "b", "c"], total_capacity=90)
        assert parts.per_tenant_capacity == 30
        assert parts.cache_for("a") is not parts.cache_for("b")
        assert parts.cache_for("a") is parts.cache_for("a")

    def test_partitions_unbounded_by_default(self):
        parts = TemporalCachePartitions(["a", "b"])
        assert parts.per_tenant_capacity is None

    def test_partitions_reject_unknown_tenant(self):
        parts = TemporalCachePartitions(["a"])
        with pytest.raises(ConfigurationError):
            parts.cache_for("ghost")

    def test_partitions_reject_duplicates_and_overcommit(self):
        with pytest.raises(ConfigurationError):
            TemporalCachePartitions(["a", "a"])
        with pytest.raises(ConfigurationError):
            TemporalCachePartitions(["a", "b", "c"], total_capacity=2)


# ----------------------------------------------------------------------
# Policy selection (pure logic)
# ----------------------------------------------------------------------
def _pending(order, completed=0, est=100.0, deadline=None, mode=WORK_PROBE,
             arrival=0, slo_class="standard"):
    from repro.exec.scheduler import FrameWorkItem

    return PendingFrame(
        item=FrameWorkItem(client=f"c{order}", frame=completed, mode=mode,
                           cost_hint=int(est)),
        order=order,
        arrival_cycle=arrival,
        completed=completed,
        total_frames=8,
        est_cycles=est,
        deadline_cycle=deadline,
        slo_class=slo_class,
    )


class TestPolicies:
    def test_fifo_prefers_earliest_arrival(self):
        pending = [_pending(0, arrival=50), _pending(1, arrival=0)]
        assert FIFOPolicy().select(pending, clock=100) == 1

    def test_round_robin_prefers_least_served(self):
        pending = [_pending(0, completed=3), _pending(1, completed=1)]
        assert RoundRobinPolicy().select(pending, clock=0) == 1

    def test_deadline_prefers_least_slack(self):
        pending = [
            _pending(0, est=100.0, deadline=10_000.0),
            _pending(1, est=100.0, deadline=500.0),
        ]
        assert DeadlineAwarePolicy().select(pending, clock=0) == 1

    def test_deadline_deprioritises_cheap_frames(self):
        # Same deadline: the cheap replay keeps its window as slack, the
        # expensive probe does not, so the probe runs first.
        pending = [
            _pending(0, est=10.0, deadline=1_000.0, mode=WORK_REPLAY),
            _pending(1, est=900.0, deadline=1_000.0, mode=WORK_PROBE),
        ]
        assert DeadlineAwarePolicy().select(pending, clock=0) == 1

    def test_make_policy_names(self):
        for name in ("fifo", "round_robin", "deadline"):
            assert make_policy(name).name == name
        with pytest.raises(ConfigurationError):
            make_policy("lottery")


# ----------------------------------------------------------------------
# Server invariants
# ----------------------------------------------------------------------
class TestServerInvariants:
    def test_round_robin_never_starves(self, accelerator):
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(3))
        ]
        server = _server(accelerator, requests, shared_content=False)
        report = server.serve("round_robin")
        counts = {r.client_id: 0 for r in requests}
        total = {r.client_id: FRAMES for r in requests}
        for step in report.schedule:
            unfinished = [c for c in counts if counts[c] < total[c]]
            spread = max(counts[c] for c in unfinished) - min(
                counts[c] for c in unfinished
            )
            assert spread <= 1, f"client starved before {step}"
            assert counts[step.client] == min(counts[c] for c in unfinished)
            counts[step.client] += 1
        assert counts == total

    def test_conservation_of_cycles(self, accelerator):
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(3))
        ]
        server = _server(accelerator, requests, shared_content=False)
        for policy in ("fifo", "round_robin", "deadline"):
            report = server.serve(policy)
            assert report.busy_cycles == sum(
                c.service_cycles for c in report.clients
            )
            assert report.busy_cycles == sum(s.cycles for s in report.schedule)
            # Simultaneous arrivals: the clock never idles.
            assert report.makespan_cycles == report.busy_cycles
            # Private temporal-cache partitions price every client exactly
            # as it would run alone, so with content sharing off the
            # interleaved total equals back-to-back.
            for client in report.clients:
                assert client.service_cycles == client.alone_cycles
            assert report.busy_cycles == report.back_to_back_cycles

    def test_cross_replay_skips_do_not_reuse_stale_temporal_masks(
        self, accelerator
    ):
        # Client B probes every other frame of the same path client A
        # probes fully, so B's keyframes are served from A's executed
        # content and B's own temporal cache never sees them.  B's later
        # fresh frames then compare against an *older* resident set than
        # B's alone run did — the memoised hit masks (populated by the
        # alone run) must not leak across that difference.
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.6)
        seq_a = synthetic_sequence(path)
        seq_a.planned = [r is None for r in seq_a.replays]  # probe all
        seq_b = synthetic_sequence(path)
        seq_b.planned = [k % 2 == 0 for k in range(FRAMES)]  # probe 0, 2

        server = SequenceServer(accelerator)
        server.submit(_request("a", path), seq_a)
        server.submit(_request("b", path, probe_interval=2), seq_b)
        report = server.serve("fifo")
        served = {
            s.frame: s for s in report.schedule if s.client == "b"
        }
        assert served[0].cross_replay and served[2].cross_replay
        assert not served[1].cross_replay and not served[3].cross_replay

        # Ground truth: a cold trace (no memo state) simulated with the
        # exact skip pattern the serving schedule executed — scan-out for
        # the cross-replayed keyframes, fresh simulation (with the
        # correspondingly older resident set) for frames 1 and 3.  At this
        # scale cycles are MLP-bound, so the temporal-mask difference
        # shows up in encoding busy time and therefore energy.
        cold = SequenceTrace.from_dict(seq_b.to_dict())
        cold.planned = list(seq_b.planned)
        cache = TemporalVertexCache()
        truth_energy = 0.0
        truth_cycles = {}
        for k in range(FRAMES):
            if k in (0, 2):
                rep = accelerator.simulate_scanout(cold.frames[k])
            else:
                rep = accelerator.simulate_sequence_frame(
                    cold, k, temporal=cache
                )
                truth_cycles[k] = rep.total_cycles
            truth_energy += rep.energy_joules
        for k in (1, 3):
            assert served[k].cycles == truth_cycles[k]
        assert report.client("b").energy_joules == pytest.approx(
            truth_energy, rel=1e-12
        ), "stale temporal-mask reuse skewed the served energy attribution"

    def test_bounded_capacity_models_contention(self, accelerator):
        # A bounded temporal budget splits capacity among tenants, so a
        # served client holds less cache than it would alone and may pay
        # more than the back-to-back reference (which uses the full
        # budget).  Attribution conservation must hold regardless.
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(3))
        ]
        server = _server(
            accelerator, requests, shared_content=False, temporal_capacity=300
        )
        report = server.serve("round_robin")
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )
        # Partitioned clients never price *below* their full-cache alone
        # run: losing cache capacity cannot reduce cycles.
        for client in report.clients:
            assert client.service_cycles >= client.alone_cycles

    def test_deterministic_reports(self, accelerator):
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(3))
        ]
        server = _server(accelerator, requests)
        for policy in ("fifo", "round_robin", "deadline"):
            assert server.serve(policy).to_dict() == server.serve(policy).to_dict()

    def test_fifo_runs_clients_back_to_back(self, accelerator):
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(2))
        ]
        server = _server(accelerator, requests, shared_content=False)
        report = server.serve("fifo")
        order = [s.client for s in report.schedule]
        assert order == ["c0"] * FRAMES + ["c1"] * FRAMES

    def test_twin_clients_served_from_shared_content(self, accelerator):
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        requests = [_request("orig", path), _request("twin", path)]
        server = _server(accelerator, requests)
        report = server.serve("fifo")
        twin = report.client("twin")
        assert twin.cross_replays == FRAMES
        assert twin.service_cycles < report.client("orig").service_cycles
        assert report.busy_cycles < report.back_to_back_cycles

    def test_shared_pose_keyframe_cross_replays(self, accelerator):
        # Orbit and dolly paths share their first pose bit-identically, and
        # both probe it as a keyframe -> the later client's probe is served
        # at scan-out cost.
        orbit = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        dolly = camera_path("dolly", FRAMES, SIZE, SIZE, travel=0.3)
        assert pose_key(orbit.cameras()[0]) == pose_key(dolly.cameras()[0])
        server = _server(
            accelerator, [_request("a", orbit), _request("b", dolly)]
        )
        report = server.serve("fifo")
        assert report.client("b").cross_replays == 1
        assert report.busy_cycles < report.back_to_back_cycles

    def test_arrivals_gate_scheduling(self, accelerator):
        paths = _distinct_paths(2)
        early = _request("early", paths[0])
        late = _request("late", paths[1], arrival_cycle=10**9)
        server = _server(accelerator, [early, late], shared_content=False)
        report = server.serve("round_robin")
        late_frames = [s for s in report.schedule if s.client == "late"]
        assert all(s.start_cycle >= 10**9 for s in late_frames)
        # The accelerator idled between the early client finishing and the
        # late arrival: makespan exceeds busy cycles.
        assert report.makespan_cycles > report.busy_cycles

    def test_submission_validation(self, accelerator):
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        server = SequenceServer(accelerator)
        server.submit(_request("a", path), synthetic_sequence(path))
        with pytest.raises(ConfigurationError):
            server.submit(_request("a", path), synthetic_sequence(path))
        other = camera_path("orbit", FRAMES + 1, SIZE, SIZE, arc=0.3)
        with pytest.raises(ConfigurationError):
            server.submit(_request("b", path), synthetic_sequence(other))
        with pytest.raises(ConfigurationError):
            server.submit(_request("c", path), "not a sequence")

    def test_serve_requires_clients(self, accelerator):
        with pytest.raises(ConfigurationError):
            SequenceServer(accelerator).serve("fifo")


# ----------------------------------------------------------------------
# Requests and report arithmetic
# ----------------------------------------------------------------------
class TestRequestAndReport:
    def test_request_validation(self):
        path = camera_path("orbit", 2, SIZE, SIZE)
        with pytest.raises(ConfigurationError):
            ClientRequest(client_id="", scene="s", path=path)
        with pytest.raises(ConfigurationError):
            ClientRequest(client_id="c", scene="s", path=path, probe_interval=-1)
        with pytest.raises(ConfigurationError):
            ClientRequest(client_id="c", scene="s", path=path, arrival_cycle=-5)
        with pytest.raises(ConfigurationError):
            ClientRequest(
                client_id="c", scene="s", path=path, frame_interval_cycles=0
            )

    def test_content_key_identifies_twins(self):
        path = camera_path("orbit", 2, SIZE, SIZE)
        a = ClientRequest(client_id="a", scene="s", path=path)
        b = ClientRequest(client_id="b", scene="s", path=path)
        c = ClientRequest(client_id="c", scene="s", path=path, probe_interval=2)
        assert a.content_key() == b.content_key()
        assert a.content_key() != c.content_key()

    def test_jain_fairness_bounds(self):
        assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)
        skewed = jain_fairness([10.0, 1.0, 1.0])
        assert 0.0 < skewed < 1.0
        assert jain_fairness([]) == 1.0

    def test_departure_must_follow_arrival(self):
        path = camera_path("orbit", 2, SIZE, SIZE)
        with pytest.raises(ConfigurationError):
            ClientRequest(
                client_id="c", scene="s", path=path,
                arrival_cycle=100, departure_cycle=100,
            )


# ----------------------------------------------------------------------
# Earliest-slack-first tie-breaking (regression)
# ----------------------------------------------------------------------
class TestSlackTieBreaking:
    def _tied(self, *client_ids):
        """Pending frames with identical slack, listed in the given
        (client-id) order — submission order follows list position."""
        from repro.exec.scheduler import FrameWorkItem

        return [
            PendingFrame(
                item=FrameWorkItem(
                    client=cid, frame=0, mode=WORK_PROBE, cost_hint=100
                ),
                order=i,
                arrival_cycle=0,
                completed=0,
                total_frames=4,
                est_cycles=100.0,
                deadline_cycle=1_000.0,
            )
            for i, cid in enumerate(client_ids)
        ]

    def test_equal_slack_breaks_by_client_id_not_submission_order(self):
        # "zed" was submitted first; equal slacks must still schedule
        # "anna" first (stable lexicographic client-id order).
        pending = self._tied("zed", "anna")
        assert DeadlineAwarePolicy().select(pending, clock=0) == 1
        assert PreemptiveDeadlinePolicy().select(pending, clock=0) == 1
        # And the choice is stable under list reversal.
        pending = self._tied("anna", "zed")
        assert DeadlineAwarePolicy().select(pending, clock=0) == 0
        assert PreemptiveDeadlinePolicy().select(pending, clock=0) == 0

    def test_unequal_slack_still_wins(self):
        pending = self._tied("anna", "zed")
        urgent = pending[1]
        pending[1] = PendingFrame(
            item=urgent.item,
            order=urgent.order,
            arrival_cycle=0,
            completed=0,
            total_frames=4,
            est_cycles=100.0,
            deadline_cycle=150.0,
        )
        assert DeadlineAwarePolicy().select(pending, clock=0) == 1


# ----------------------------------------------------------------------
# Policy construction (preemptive variants)
# ----------------------------------------------------------------------
class TestPolicyConstruction:
    def test_all_policy_names_resolve(self):
        for name in ALL_POLICY_NAMES:
            policy = make_policy(name)
            assert policy.name == name
            assert policy.preemptive == (name in PREEMPTIVE_POLICY_NAMES)

    def test_quantum_applies_to_preemptive_only(self):
        assert make_policy("round_robin_preemptive", quantum=7).quantum == 7
        assert make_policy("deadline_preemptive", quantum=2).quantum == 2
        with pytest.raises(ConfigurationError):
            make_policy("round_robin", quantum=7)
        with pytest.raises(ConfigurationError):
            make_policy("round_robin_preemptive", quantum=0)
        with pytest.raises(ConfigurationError):
            PreemptiveRoundRobinPolicy(quantum=-1)


# ----------------------------------------------------------------------
# Preemptive serving (wavefront-granularity event loop)
# ----------------------------------------------------------------------
class TestPreemptiveServing:
    def _distinct_server(self, accelerator, n=3, **kwargs):
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(n))
        ]
        return _server(
            accelerator, requests, varied=True, shared_content=False, **kwargs
        )

    def test_conservation_under_preemption(self, accelerator):
        """The headline invariant: interleaved total cycles equal the sum
        of per-client service cycles, and each client's service is
        bit-identical to the frame-atomic schedule's."""
        server = self._distinct_server(accelerator)
        atomic = server.serve("round_robin")
        for policy in PREEMPTIVE_POLICY_NAMES:
            report = server.serve(policy)
            assert report.busy_cycles == sum(
                c.service_cycles for c in report.clients
            )
            assert report.context_switch_cycles == 0
            assert report.makespan_cycles == report.busy_cycles
            # Suspend/resume changes *when* wavefronts run, never what
            # they cost: per-client totals match the atomic run exactly.
            for a, b in zip(atomic.clients, report.clients):
                assert a.client_id == b.client_id
                assert a.service_cycles == b.service_cycles
            assert report.busy_cycles == atomic.busy_cycles

    def test_preemptions_and_context_switches_are_counted(self, accelerator):
        server = self._distinct_server(accelerator)
        atomic = server.serve("round_robin")
        assert atomic.context_switches == 0
        assert all(c.preemptions == 0 for c in atomic.clients)
        report = server.serve(make_policy("round_robin_preemptive", quantum=1))
        assert report.context_switches > 0
        assert sum(c.preemptions for c in report.clients) > 0
        assert sum(s.preemptions for s in report.schedule) == sum(
            c.preemptions for c in report.clients
        )

    def test_context_switch_overhead_accounted_separately(self, accelerator):
        free = self._distinct_server(accelerator)
        taxed = self._distinct_server(accelerator, context_switch_cycles=50)
        policy = make_policy("round_robin_preemptive", quantum=1)
        a = free.serve(policy)
        b = taxed.serve(policy)
        assert b.context_switches == a.context_switches > 0
        assert b.context_switch_cycles == 50 * b.context_switches
        # Overhead never leaks into service attribution...
        assert b.busy_cycles == a.busy_cycles
        assert [c.service_cycles for c in b.clients] == [
            c.service_cycles for c in a.clients
        ]
        # ...it sits next to it on the clock.
        assert b.makespan_cycles == b.busy_cycles + b.context_switch_cycles

    def test_deterministic_preemptive_reports(self, accelerator):
        server = self._distinct_server(accelerator)
        for policy in PREEMPTIVE_POLICY_NAMES:
            assert (
                server.serve(policy).to_dict() == server.serve(policy).to_dict()
            )

    def test_mid_run_admission_at_quantum_boundary(self, accelerator):
        """A client arriving mid-frame is served at the next quantum
        boundary under preemption, instead of waiting out the in-flight
        frame."""
        big_path, small_path = _distinct_paths(2)
        big = _request("big", big_path)
        seq = synthetic_sequence(big_path, varied=True)
        first_frame_steps = sum(
            1 for _ in seq.frames[0].split(accelerator.config.wavefront_rays)
        )
        assert first_frame_steps > 2, "fixture frame must be multi-step"
        # Arrive well inside the big client's first frame.
        late = _request("late", small_path, arrival_cycle=10)

        def run(policy):
            server = SequenceServer(accelerator, shared_content=False)
            server.submit(big, seq)
            server.submit(
                late, synthetic_sequence(small_path, budget=2)
            )
            return server.serve(policy)

        atomic = run("round_robin")
        preemptive = run(make_policy("round_robin_preemptive", quantum=1))
        late_first_atomic = min(
            s.completion_cycle for s in atomic.schedule if s.client == "late"
        )
        late_first_preemptive = min(
            s.completion_cycle
            for s in preemptive.schedule
            if s.client == "late"
        )
        big_first_end = min(
            s.completion_cycle
            for s in preemptive.schedule
            if s.client == "big"
        )
        assert late_first_preemptive < late_first_atomic
        assert late_first_preemptive < big_first_end, (
            "the late arrival should be served inside the big client's "
            "first frame, not after it"
        )
        assert preemptive.busy_cycles == atomic.busy_cycles

    def test_departure_aborts_remaining_frames(self, accelerator):
        paths = _distinct_paths(2)
        stay = _request("stay", paths[0])
        # Depart early enough that undelivered frames remain.
        quit_req = _request("quit", paths[1], departure_cycle=1)
        server = SequenceServer(accelerator, shared_content=False)
        server.submit(stay, synthetic_sequence(paths[0], varied=True))
        server.submit(quit_req, synthetic_sequence(paths[1], varied=True))
        report = server.serve("round_robin")
        quit_rep = report.client("quit")
        stay_rep = report.client("stay")
        assert quit_rep.aborted_frames > 0
        assert quit_rep.frames + quit_rep.aborted_frames == FRAMES
        assert stay_rep.frames == FRAMES
        # The survivor is priced exactly as if it ran alone (unbounded
        # partitions, no shared content).
        assert stay_rep.service_cycles == stay_rep.alone_cycles
        # Conservation holds with the aborted client's partial work
        # attributed to it.
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )

    def test_departure_abandons_in_flight_execution(self, accelerator):
        """Under a 1-step quantum the quitter's multi-wavefront frame is
        in flight when the departure lands: its partial cycles stay
        attributed (delivered=False schedule entry)."""
        paths = _distinct_paths(2)
        stay = _request("stay", paths[0])
        quit_seq = synthetic_sequence(paths[1], varied=True)
        first_cycles = (
            SequenceServer(accelerator)
            .accelerator.simulate_sequence_frame(quit_seq, 0)
            .total_cycles
        )
        quit_req = _request(
            "quit", paths[1], departure_cycle=max(2, first_cycles // 4)
        )
        server = SequenceServer(accelerator, shared_content=False)
        server.submit(stay, synthetic_sequence(paths[0], varied=True))
        cold = SequenceTrace.from_dict(quit_seq.to_dict())
        cold.planned = list(quit_seq.planned)
        server.submit(quit_req, cold)
        report = server.serve(make_policy("round_robin_preemptive", quantum=1))
        aborted = [s for s in report.schedule if not s.delivered]
        assert len(aborted) == 1 and aborted[0].client == "quit"
        assert 0 < aborted[0].cycles < first_cycles
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )
        assert report.client("quit").aborted_frames == FRAMES - len(
            [s for s in report.schedule
             if s.client == "quit" and s.delivered]
        )

    def test_bounded_capacity_conservation_under_preemption(self, accelerator):
        server = self._distinct_server(accelerator, temporal_capacity=300)
        report = server.serve("deadline_preemptive")
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )
        for client in report.clients:
            assert client.service_cycles >= client.alone_cycles


# ----------------------------------------------------------------------
# Elastic temporal-cache re-partitioning (exec layer)
# ----------------------------------------------------------------------
class TestElasticPartitions:
    def test_admit_release_conserve_budget(self):
        parts = TemporalCachePartitions([], total_capacity=120)
        assert parts.tenants == []
        parts.admit("a")
        assert parts.per_tenant_capacity == 120
        parts.admit("b")
        parts.admit("c")
        assert parts.per_tenant_capacity == 40
        assert parts.per_tenant_capacity * len(parts.tenants) <= 120
        parts.release("b")
        assert parts.per_tenant_capacity == 60
        assert sorted(parts.tenants) == ["a", "c"]
        assert parts.per_tenant_capacity * len(parts.tenants) <= 120
        with pytest.raises(ConfigurationError):
            parts.admit("a")
        with pytest.raises(ConfigurationError):
            parts.release("ghost")

    def test_admit_rejects_overcommit(self):
        parts = TemporalCachePartitions(["a", "b"], total_capacity=2)
        with pytest.raises(ConfigurationError):
            parts.admit("c")

    def test_unbounded_stays_unbounded(self):
        parts = TemporalCachePartitions(["a"], total_capacity=None)
        parts.admit("b")
        parts.release("a")
        assert parts.per_tenant_capacity is None
        assert parts.cache_for("b").capacity_per_level is None

    def test_admission_trims_resident_sets_to_new_share(self):
        parts = TemporalCachePartitions(["a"], total_capacity=8)
        cache = parts.cache_for("a")
        cache.record(np.arange(6), level=0)
        cache.commit_frame(tag=0)
        before = cache.lookup(np.arange(6), level=0)
        assert before.all()
        parts.admit("b")  # share drops 8 -> 4; resident trimmed to lowest 4
        assert cache.capacity_per_level == 4
        after = cache.lookup(np.arange(6), level=0)
        assert after.tolist() == [True] * 4 + [False] * 2

    def test_release_grows_survivor_without_corrupting_masks(self):
        parts = TemporalCachePartitions(["a", "b"], total_capacity=12)
        survivor = parts.cache_for("a")
        survivor.record(np.arange(5), level=0)
        survivor.commit_frame(tag=0)
        before = survivor.lookup(np.arange(8), level=0).copy()
        parts.release("b")
        assert survivor.capacity_per_level == 12
        after = survivor.lookup(np.arange(8), level=0)
        # Growth never invents entries: the mask equals a fresh membership
        # test of the untouched resident set.
        assert after.tolist() == before.tolist()
        assert after.tolist() == [True] * 5 + [False] * 3

    def test_resize_history_blocks_stale_memoised_masks(self):
        """Capacity returning to an earlier value must not resurrect a
        hit mask memoised against the pre-resize resident set."""
        memo_store = {}

        def memo(key, compute):
            if key not in memo_store:
                memo_store[key] = compute()
            return memo_store[key]

        cache = TemporalVertexCache(6)
        cache.record(np.arange(6), level=0)
        cache.commit_frame(tag=0)
        stream = np.arange(6)
        first = cache.lookup(stream, level=0, memo=memo)
        assert first.all()
        cache.resize(3)   # trims resident to {0, 1, 2}
        cache.resize(6)   # same nominal capacity as when `first` was memoised
        again = cache.lookup(stream, level=0, memo=memo)
        assert again.tolist() == [True] * 3 + [False] * 3, (
            "stale pre-resize mask served from the memo"
        )

    def test_resident_keys_distinguish_cache_instances_sharing_a_memo(self):
        """Two serve() runs share one trace memo but resize/commit in
        different orders (e.g. a departure landing before vs after a
        commit): masks memoised by one run must not leak into the other,
        even when nominal capacity and commit tag coincide."""
        memo_store = {}

        def memo(key, compute):
            if key not in memo_store:
                memo_store[key] = compute()
            return memo_store[key]

        stream = np.arange(10)
        # Run 1: commit at share 6 (trimmed to {0..5}), then the tenant
        # set shrinks and the survivor grows to 12.
        run1 = TemporalVertexCache(6)
        run1.record(stream, level=0)
        run1.commit_frame(tag=0)
        run1.resize(12)
        mask1 = run1.lookup(stream, level=0, memo=memo)
        assert int(mask1.sum()) == 6
        # Run 2: the departure lands first, so the commit happens at
        # share 12 — all ten addresses resident.
        run2 = TemporalVertexCache(6)
        run2.resize(12)
        run2.record(stream, level=0)
        run2.commit_frame(tag=0)
        mask2 = run2.lookup(stream, level=0, memo=memo)
        assert mask2.all(), (
            "run 1's trimmed mask leaked into run 2 through the shared memo"
        )

    def test_resize_validation(self):
        cache = TemporalVertexCache(4)
        with pytest.raises(ConfigurationError):
            cache.resize(0)


# ----------------------------------------------------------------------
# Learned cost model (measured wavefront feedback)
# ----------------------------------------------------------------------
class TestWavefrontCostModel:
    def test_prior_until_calibrated(self):
        model = WavefrontCostModel(prior=3.0)
        assert not model.calibrated
        assert model.estimate(10) == 30.0
        model.observe(500, 100)
        assert model.calibrated
        assert model.cycles_per_point == 5.0
        assert model.estimate(10) == 50.0

    def test_cumulative_ratio_not_two_tap(self):
        model = WavefrontCostModel(prior=1.0)
        model.observe(100, 100)   # 1.0
        model.observe(900, 100)   # a spike an EMA would half-weight
        assert model.cycles_per_point == pytest.approx(5.0)

    def test_zero_point_charges_fold_into_rate(self):
        # The Phase I adaptive tail charges cycles for zero points; the
        # overhead must raise the learned rate instead of vanishing.
        model = WavefrontCostModel()
        model.observe(100, 100)
        model.observe(50, 0)
        assert model.cycles_per_point == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WavefrontCostModel(prior=0.0)
        model = WavefrontCostModel()
        with pytest.raises(ConfigurationError):
            model.observe(-1, 0)

    def test_serve_feeds_measured_charges_to_cost_model(
        self, accelerator, monkeypatch
    ):
        """The server's estimator is fed the *measured* execution charges:
        across a run, observed (cycles, points) sum to exactly the fresh
        frames' service cycles and executed density points."""
        import repro.serving.server as server_mod

        observed = []

        class Spy(WavefrontCostModel):
            def observe(self, cycles, points):
                observed.append((cycles, points))
                super().observe(cycles, points)

        monkeypatch.setattr(server_mod, "WavefrontCostModel", Spy)
        requests = [
            _request(f"c{i}", p) for i, p in enumerate(_distinct_paths(2))
        ]
        server = _server(
            accelerator, requests, varied=True, shared_content=False
        )
        report = server.serve("round_robin")
        fresh_cycles = sum(
            s.cycles for s in report.schedule if s.mode != WORK_REPLAY
        )
        assert sum(c for c, _ in observed) == fresh_cycles
        executed_points = sum(
            synthetic_sequence(r.path, varied=True).executed_density_points()
            for r in requests
        )
        assert sum(p for _, p in observed) == executed_points
        # Per-quantum feedback under preemption covers the same totals.
        observed.clear()
        preemptive = server.serve(
            make_policy("round_robin_preemptive", quantum=1)
        )
        assert sum(c for c, _ in observed) == sum(
            s.cycles for s in preemptive.schedule if s.mode != WORK_REPLAY
        )
        assert len(observed) > len(preemptive.schedule), (
            "preemption should feed back more than once per frame"
        )


# ----------------------------------------------------------------------
# Content-keyed serving caches (the id()-reuse bug class)
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        cache = _LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)           # evicts "b", the LRU entry
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_membership_probe_does_not_refresh(self):
        cache = _LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # a probe, not a use
        cache.put("c", 3)    # still evicts "a"
        assert "a" not in cache

    def test_get_returns_default_on_miss(self):
        assert _LRUCache(1).get("missing", 7) == 7

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            _LRUCache(0)


class TestContentKeyedCaches:
    def test_results_survive_object_reuse_after_release(self, accelerator):
        """A long-lived server admits and releases tenants forever, and
        CPython reuses a garbage-collected trace's memory address — so a
        cache keyed on ``id(trace)`` can serve client A's cached plans or
        scan-out prices against client B's different trace.  Every
        re-admission must price exactly like a fresh server."""
        import gc

        longlived = SequenceServer(accelerator)
        for path in _distinct_paths(3):
            fresh = SequenceServer(accelerator)
            fresh.submit(_request("tenant", path), synthetic_sequence(path))
            reference = fresh.serve("fifo").to_dict()
            trace = synthetic_sequence(path)
            longlived.submit(_request("tenant", path), trace)
            assert longlived.serve("fifo").to_dict() == reference
            longlived.release("tenant")
            del trace
            gc.collect()  # invites id() reuse for the next iteration

    def test_equal_content_shares_cache_entries(self, accelerator):
        """Twins are *distinct objects* with equal content; content keying
        collapses their plan and scan-out entries to one set (an
        ``id()``-keyed cache would store every entry twice)."""
        path = _distinct_paths(1)[0]
        twins = SequenceServer(accelerator)
        twins.submit(_request("a", path), synthetic_sequence(path))
        twins.submit(_request("b", path), synthetic_sequence(path))
        twins.serve("fifo")
        solo = SequenceServer(accelerator)
        solo.submit(_request("a", path), synthetic_sequence(path))
        solo.serve("fifo")
        assert len(twins._plan_cache) == len(solo._plan_cache)
        # The follower's frames all ride scan-out; the memo holds one
        # entry per distinct rendered content, not one per frame served.
        trace = synthetic_sequence(path)
        distinct = {
            trace.frames[k].rendered_pixels for k in range(trace.num_frames)
        }
        assert len(twins._scanout_memo) == len(distinct)

    def test_long_lived_caches_stay_bounded(self, accelerator, monkeypatch):
        monkeypatch.setattr(SequenceServer, "PLAN_CACHE_SIZE", 4)
        monkeypatch.setattr(SequenceServer, "SCANOUT_MEMO_SIZE", 4)
        server = SequenceServer(accelerator)
        for i, path in enumerate(_distinct_paths(4)):
            server.submit(_request(f"c{i}", path), synthetic_sequence(path))
        server.serve("fifo")
        assert len(server._plan_cache) <= 4
        assert len(server._scanout_memo) <= 4


# ----------------------------------------------------------------------
# Mid-flight twin deferral (preemptive duplicate-execution fix)
# ----------------------------------------------------------------------
class TestTwinDeferral:
    def _twins(self):
        shared = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        return [_request("alpha", shared), _request("beta", shared)]

    def test_deferral_avoids_duplicate_inflight_execution(self, accelerator):
        """Under a preemptive policy a twin's frame used to start fresh
        while its leader was suspended mid-flight (the scan-out copy was
        not committed yet), executing popular content twice.  Deferring
        the follower until the leader commits must not cost more than
        executing both, and the follower's frames ride scan-out replay."""
        policy = make_policy("round_robin_preemptive", quantum=1)
        deferred = _server(accelerator, self._twins(), varied=True).serve(
            policy
        )
        duplicated = _server(
            accelerator, self._twins(), varied=True, twin_defer_limit=0
        ).serve(policy)
        assert deferred.total_frames == duplicated.total_frames
        assert deferred.busy_cycles < duplicated.busy_cycles
        follower = deferred.client("beta")
        assert follower.twin_deferrals > 0
        assert any(
            s.cross_replay for s in deferred.schedule if s.client == "beta"
        )

    def test_starvation_guard_terminates_at_limit_one(self, accelerator):
        server = _server(
            accelerator, self._twins(), varied=True, twin_defer_limit=1
        )
        report = server.serve(make_policy("round_robin_preemptive", quantum=1))
        assert report.total_frames == 2 * FRAMES

    def test_atomic_frames_unaffected_by_deferral(self, accelerator):
        """Non-preemptive frames complete atomically, so a leader is never
        suspended mid-flight and the deferral path must be inert."""
        on = _server(accelerator, self._twins(), varied=True)
        off = _server(
            accelerator, self._twins(), varied=True, twin_defer_limit=0
        )
        assert on.serve("round_robin").to_dict() == off.serve(
            "round_robin"
        ).to_dict()

    def test_leader_departure_releases_deferred_twin(self, accelerator):
        """Regression: the leader departs mid-flight while its twin is
        deferred waiting on the leader's scan-out commit.  The abandoned
        execution never commits, so the follower must fall back to
        executing its own frames — it progresses to completion and the
        interleaved cycles still conserve."""
        shared = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        probe_cycles = (
            SequenceServer(accelerator)
            .accelerator.simulate_sequence_frame(
                synthetic_sequence(shared, varied=True), 0
            )
            .total_cycles
        )
        leader = _request(
            "alpha", shared, departure_cycle=max(2, probe_cycles // 4)
        )
        twin = _request("beta", shared)
        server = SequenceServer(accelerator)
        server.submit(leader, synthetic_sequence(shared, varied=True))
        server.submit(twin, synthetic_sequence(shared, varied=True))
        report = server.serve(make_policy("round_robin_preemptive", quantum=1))
        follower = report.client("beta")
        assert follower.twin_deferrals > 0
        assert follower.frames == FRAMES
        assert report.client("alpha").aborted_frames > 0
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )

    def test_rejects_negative_limit(self, accelerator):
        with pytest.raises(ConfigurationError):
            SequenceServer(accelerator, twin_defer_limit=-1)


# ----------------------------------------------------------------------
# SLO classes, admission control, shedding, degrade, auto quantum
# ----------------------------------------------------------------------
class TestSLOServing:
    def _overload(self, accelerator, slo=None, recorder=None, n_batch=2):
        """An interactive tenant on an impossible cadence plus batch
        ballast — every scheduling instant is an overload once serving
        starts."""
        paths = _distinct_paths(1 + n_batch)
        requests = [
            _request(
                "urgent",
                paths[0],
                frame_interval_cycles=50,
                slo_class="interactive",
            )
        ] + [
            _request(f"bulk{i}", paths[1 + i], slo_class="batch")
            for i in range(n_batch)
        ]
        server = SequenceServer(accelerator, slo=slo, recorder=recorder)
        for request in requests:
            server.submit(
                request, synthetic_sequence(request.path, varied=True)
            )
        return server

    def test_unknown_slo_class_rejected(self):
        with pytest.raises(ConfigurationError):
            _request("x", _distinct_paths(1)[0], slo_class="platinum")

    def test_weighted_slack_orders_by_class(self):
        # Positive slack shrinks for urgent classes, negative slack is
        # amplified — interactive outranks batch on both sides of the
        # deadline.
        assert weighted_slack(800.0, "interactive") < weighted_slack(
            800.0, "batch"
        )
        assert weighted_slack(-100.0, "interactive") < weighted_slack(
            -100.0, "batch"
        )
        pending = [
            _pending(0, est=100.0, deadline=1000.0, slo_class="batch"),
            _pending(1, est=100.0, deadline=1000.0, slo_class="interactive"),
        ]
        assert DeadlineAwarePolicy().select(pending, clock=0) == 1

    def test_best_effort_slack_reprioritises_deadline_less_frames(self):
        pending = [
            _pending(0, est=10.0, deadline=None),
            _pending(1, est=10.0, deadline=100_000.0),
        ]
        # Default: no deadline means infinite slack, runs last.
        assert DeadlineAwarePolicy().select(pending, clock=0) == 1
        # A finite best-effort slack lets deadline-less work compete.
        assert make_policy("deadline", best_effort_slack=0.0).select(
            pending, clock=0
        ) == 0
        with pytest.raises(ConfigurationError):
            make_policy("fifo", best_effort_slack=0.0)

    def test_admission_control_rejects_over_cap(self, accelerator):
        paths = _distinct_paths(3)
        scratch = SequenceServer(accelerator)
        for i, path in enumerate(paths[:2]):
            scratch.submit(
                _request(f"c{i}", path), synthetic_sequence(path, varied=True)
            )
        cap = int(scratch.projected_backlog_cycles()) + 1
        rec = MemoryRecorder()
        server = SequenceServer(
            accelerator, slo=SLOConfig(admit_cycles=cap), recorder=rec
        )
        for i, path in enumerate(paths[:2]):
            server.submit(
                _request(f"c{i}", path), synthetic_sequence(path, varied=True)
            )
        with pytest.raises(AdmissionError):
            server.submit(
                _request("late", paths[2]),
                synthetic_sequence(paths[2], varied=True),
            )
        rejects = [e for e in rec.events if e.kind == EV_ADMISSION_REJECT]
        assert len(rejects) == 1
        assert rejects[0].fields["client"] == "late"
        assert rejects[0].fields["projected_cycles"] > cap
        # Admitted clients are unaffected by the rejection.
        report = server.serve("round_robin")
        assert report.total_frames == 2 * FRAMES

    def test_shedding_drops_batch_frames_only(self, accelerator):
        rec = MemoryRecorder()
        server = self._overload(
            accelerator, slo=SLOConfig(shed=True), recorder=rec
        )
        policy = make_policy("deadline_preemptive", quantum=2)
        report = server.serve(policy)
        sheds = [e for e in rec.events if e.kind == EV_SHED]
        assert sheds
        assert all(e.fields["slo_class"] == "batch" for e in sheds)
        assert report.client("urgent").shed_frames == 0
        assert sum(c.shed_frames for c in report.clients) == len(sheds)
        for c in report.clients:
            assert c.frames + c.aborted_frames + c.shed_frames == FRAMES
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )
        # Shedding saves fleet cycles versus serving the full backlog.
        full = self._overload(accelerator).serve(policy)
        assert report.busy_cycles < full.busy_cycles

    def test_degrade_serves_reduced_budget_frames(self, accelerator):
        rec = MemoryRecorder()
        server = self._overload(
            accelerator,
            slo=SLOConfig(degrade=True, degrade_fraction=0.5),
            recorder=rec,
        )
        policy = make_policy("deadline_preemptive", quantum=2)
        report = server.serve(policy)
        degraded = [d for c in report.clients for d in c.degraded]
        assert degraded
        assert all(d["fraction"] == 0.5 for d in degraded)
        events = [e for e in rec.events if e.kind == EV_DEGRADE]
        assert len(events) == len(degraded)
        # Degraded frames are still delivered — nothing is dropped.
        for c in report.clients:
            assert c.frames == FRAMES
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )
        # Reduced sampling budget costs fewer cycles.
        full = self._overload(accelerator).serve(policy)
        assert report.busy_cycles < full.busy_cycles

    def test_degrade_psnr_guard_is_conservative(self, accelerator):
        policy = make_policy("deadline_preemptive", quantum=2)
        # A floor with no measured PSNR: unknown quality never degrades.
        blind = self._overload(
            accelerator,
            slo=SLOConfig(degrade=True, degrade_min_psnr=30.0),
        ).serve(policy)
        assert all(not c.degraded for c in blind.clients)
        # Measured PSNR above the floor degrades and is recorded.
        psnr = {
            (c, k): 35.0
            for c in ("urgent", "bulk0", "bulk1")
            for k in range(FRAMES)
        }
        seen = self._overload(
            accelerator,
            slo=SLOConfig(
                degrade=True, degrade_min_psnr=30.0, degrade_psnr=psnr
            ),
        ).serve(policy)
        degraded = [d for c in seen.clients for d in c.degraded]
        assert degraded
        assert all(d["psnr"] == 35.0 for d in degraded)
        # Measured PSNR below the floor keeps full quality.
        low = {key: 10.0 for key in psnr}
        guarded = self._overload(
            accelerator,
            slo=SLOConfig(
                degrade=True, degrade_min_psnr=30.0, degrade_psnr=low
            ),
        ).serve(policy)
        assert all(not c.degraded for c in guarded.clients)

    def test_auto_quantum_tunes_and_stays_deterministic(self, accelerator):
        rec = MemoryRecorder()
        server = self._overload(accelerator, recorder=rec)
        report = server.serve(
            make_policy("deadline_preemptive", quantum=AUTO_QUANTUM)
        )
        tunes = [e for e in rec.events if e.kind == EV_QUANTUM_TUNE]
        assert tunes
        assert all(e.fields["quantum"] >= 1 for e in tunes)
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )
        again = self._overload(accelerator).serve(
            make_policy("deadline_preemptive", quantum=AUTO_QUANTUM)
        )
        assert report.to_dict() == again.to_dict()
