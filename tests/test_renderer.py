"""Tests for the baseline renderer and its operation accounting."""

import numpy as np
import pytest

from repro.metrics.image import psnr
from repro.nerf.renderer import BaselineRenderer
from repro.nerf.volume import composite


class TestRenderRays:
    def test_shapes(self, trained_model, lego_dataset):
        renderer = BaselineRenderer(trained_model, num_samples=16)
        origins, dirs = lego_dataset.cameras[0].pixel_rays()
        points, sigmas, colors, deltas, hit = renderer.render_rays(
            origins[:10], dirs[:10]
        )
        assert points.shape == (10, 16, 3)
        assert sigmas.shape == (10, 16)
        assert colors.shape == (10, 16, 3)
        assert deltas.shape == (10, 16)
        assert hit.shape == (10,)

    def test_missed_rays_zero_sigma(self, trained_model):
        renderer = BaselineRenderer(trained_model, num_samples=8)
        origins = np.array([[10.0, 10.0, 10.0]])
        dirs = np.array([[1.0, 0.0, 0.0]])
        _, sigmas, _, _, hit = renderer.render_rays(origins, dirs)
        assert not hit[0]
        np.testing.assert_array_equal(sigmas, np.zeros((1, 8)))


class TestRenderImage:
    def test_image_shape_range(self, baseline_result):
        assert baseline_result.image.shape == (24, 24, 3)
        assert baseline_result.image.min() >= 0
        assert baseline_result.image.max() <= 1 + 1e-9

    def test_quality_against_reference(self, baseline_result, lego_dataset):
        reference = lego_dataset.reference_image(0, num_samples=128)
        assert psnr(baseline_result.image, reference) > 18.0

    def test_num_rays(self, baseline_result):
        assert baseline_result.num_rays == 24 * 24

    def test_points_counted(self, baseline_result):
        # Only rays hitting the cube march samples.
        assert 0 < baseline_result.points_total <= 24 * 24 * 24
        assert baseline_result.color_points == baseline_result.points_total

    def test_flops_nonzero_per_phase(self, baseline_result):
        for phase in ("embedding", "density", "color", "volume"):
            assert baseline_result.phase_counts[phase].flops > 0

    def test_flops_fraction_sums_to_one(self, baseline_result):
        total = sum(
            baseline_result.flops_fraction(p)
            for p in ("embedding", "density", "color", "volume")
        )
        assert total == pytest.approx(1.0)

    def test_color_dominates_flops(self, baseline_result):
        """The paper's Challenge 2: color MLP carries most FLOPs."""
        assert baseline_result.flops_fraction("color") > 0.5

    def test_batching_invariance(self, trained_model, lego_dataset):
        camera = lego_dataset.cameras[0]
        a = BaselineRenderer(trained_model, num_samples=12, batch_rays=64)
        b = BaselineRenderer(trained_model, num_samples=12, batch_rays=4096)
        np.testing.assert_allclose(
            a.render_image(camera).image, b.render_image(camera).image
        )


class TestEarlyTermination:
    def test_reduces_points(self, trained_model, lego_dataset):
        camera = lego_dataset.cameras[0]
        full = BaselineRenderer(trained_model, num_samples=24)
        et = BaselineRenderer(trained_model, num_samples=24, early_termination=0.99)
        r_full = full.render_image(camera)
        r_et = et.render_image(camera)
        assert r_et.points_total < r_full.points_total

    def test_quality_preserved(self, trained_model, lego_dataset):
        camera = lego_dataset.cameras[0]
        full = BaselineRenderer(trained_model, num_samples=24).render_image(camera)
        et = BaselineRenderer(
            trained_model, num_samples=24, early_termination=0.999
        ).render_image(camera)
        assert psnr(et.image, full.image) > 30.0

    def test_sample_counts_bounded(self, trained_model, lego_dataset):
        camera = lego_dataset.cameras[0]
        result = BaselineRenderer(
            trained_model, num_samples=24, early_termination=0.99
        ).render_image(camera)
        assert result.sample_counts.max() <= 24
        assert result.sample_counts.min() >= 0
