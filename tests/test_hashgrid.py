"""Tests for the multi-resolution hash-grid encoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.nerf.hashgrid import (
    CORNER_OFFSETS,
    HashGridConfig,
    HashGridEncoder,
    dense_coords_index,
    hash_coords,
)


class TestHashGridConfig:
    def test_level_resolutions_geometric(self):
        cfg = HashGridConfig(num_levels=4, table_size=2**12,
                             base_resolution=16, max_resolution=128)
        res = cfg.level_resolutions
        assert res[0] == 16
        assert res[-1] == 128
        assert np.all(np.diff(res) > 0)

    def test_single_level(self):
        cfg = HashGridConfig(num_levels=1, table_size=2**10,
                             base_resolution=8, max_resolution=8)
        assert list(cfg.level_resolutions) == [8]

    def test_output_dim(self):
        cfg = HashGridConfig(num_levels=5, feature_dim=2, table_size=2**10,
                             base_resolution=4, max_resolution=32)
        assert cfg.output_dim == 10

    def test_dense_level_detection(self):
        cfg = HashGridConfig(num_levels=2, table_size=2**12,
                             base_resolution=8, max_resolution=64)
        assert cfg.level_is_dense(0)       # 9^3 = 729 <= 4096
        assert not cfg.level_is_dense(1)   # 65^3 >> 4096

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_levels": 0},
            {"table_size": 4},
            {"feature_dim": 0},
            {"base_resolution": 1},
            {"base_resolution": 64, "max_resolution": 32},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        base = dict(num_levels=4, table_size=2**10,
                    base_resolution=8, max_resolution=64)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            HashGridConfig(**base)


class TestHashing:
    def test_eq2_formula(self):
        """Check against a direct evaluation of Eq. (2)."""
        coords = np.array([[3, 5, 7]], dtype=np.uint64)
        t = 2**14
        expected = (
            (3 * 1) ^ (5 * 2654435761) ^ (7 * 805459861)
        ) % t
        assert hash_coords(coords, t)[0] == expected

    def test_hash_in_range(self, rng):
        coords = rng.integers(0, 1000, size=(100, 3))
        idx = hash_coords(coords, 513)
        assert np.all((idx >= 0) & (idx < 513))

    def test_hash_deterministic(self, rng):
        coords = rng.integers(0, 100, size=(50, 3))
        np.testing.assert_array_equal(
            hash_coords(coords, 2**10), hash_coords(coords, 2**10)
        )

    @given(
        st.integers(0, 2**20), st.integers(0, 2**20), st.integers(0, 2**20)
    )
    @settings(max_examples=30)
    def test_hash_property_range(self, x, y, z):
        idx = hash_coords(np.array([[x, y, z]]), 2**15)
        assert 0 <= idx[0] < 2**15

    def test_dense_index_bijective(self):
        res = 7
        coords = np.stack(
            np.meshgrid(*[np.arange(res + 1)] * 3, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        idx = dense_coords_index(coords, res)
        assert len(np.unique(idx)) == (res + 1) ** 3


class TestVoxelVertices:
    def test_corner_offsets_cover_cube(self):
        assert CORNER_OFFSETS.shape == (8, 3)
        assert len({tuple(row) for row in CORNER_OFFSETS}) == 8

    def test_weights_sum_to_one(self, rng):
        enc = HashGridEncoder(HashGridConfig(
            num_levels=3, table_size=2**10, base_resolution=4, max_resolution=16))
        pts = rng.random((50, 3))
        _, weights = enc.voxel_vertices(pts, 1)
        np.testing.assert_allclose(weights.sum(axis=-1), np.ones(50))

    def test_weights_nonnegative(self, rng):
        enc = HashGridEncoder(HashGridConfig(
            num_levels=3, table_size=2**10, base_resolution=4, max_resolution=16))
        pts = rng.random((50, 3))
        _, weights = enc.voxel_vertices(pts, 2)
        assert np.all(weights >= -1e-12)

    def test_vertex_at_grid_point_gets_full_weight(self):
        enc = HashGridEncoder(HashGridConfig(
            num_levels=1, table_size=2**10, base_resolution=4, max_resolution=4))
        pts = np.array([[0.5, 0.5, 0.5]])  # exactly vertex (2,2,2) at res 4
        corners, weights = enc.voxel_vertices(pts, 0)
        assert weights[0, 0] == pytest.approx(1.0)
        np.testing.assert_array_equal(corners[0, 0], [2, 2, 2])

    def test_corners_within_grid(self, rng):
        cfg = HashGridConfig(num_levels=2, table_size=2**10,
                             base_resolution=4, max_resolution=8)
        enc = HashGridEncoder(cfg)
        pts = np.clip(rng.random((100, 3)), 0, 1 - 1e-9)
        for level in range(2):
            corners, _ = enc.voxel_vertices(pts, level)
            res = int(cfg.level_resolutions[level])
            assert corners.min() >= 0
            assert corners.max() <= res


class TestEncoding:
    def test_encode_shape(self, rng):
        cfg = HashGridConfig(num_levels=4, feature_dim=2, table_size=2**10,
                             base_resolution=4, max_resolution=32)
        enc = HashGridEncoder(cfg)
        out = enc.encode(rng.random((10, 3)))
        assert out.shape == (10, 8)

    def test_encode_continuous(self):
        """Trilinear interpolation must be continuous across voxel faces."""
        cfg = HashGridConfig(num_levels=2, table_size=2**12,
                             base_resolution=4, max_resolution=8)
        enc = HashGridEncoder(cfg, seed=5)
        eps = 1e-7
        boundary = 0.25  # a voxel face at res 4
        left = enc.encode(np.array([[boundary - eps, 0.4, 0.6]]))
        right = enc.encode(np.array([[boundary + eps, 0.4, 0.6]]))
        np.testing.assert_allclose(left, right, atol=1e-4)

    def test_encode_with_cache_matches_encode(self, rng):
        cfg = HashGridConfig(num_levels=3, table_size=2**10,
                             base_resolution=4, max_resolution=16)
        enc = HashGridEncoder(cfg)
        pts = rng.random((20, 3))
        a = enc.encode(pts)
        b, idx = enc.encode_with_cache(pts)
        np.testing.assert_allclose(a, b)
        assert len(idx) == 3
        assert idx[0].shape == (20, 8)

    def test_encode_backward_reduces_error(self, rng):
        """A gradient step must move the encoding toward the target."""
        cfg = HashGridConfig(num_levels=2, table_size=2**10,
                             base_resolution=4, max_resolution=8)
        enc = HashGridEncoder(cfg, seed=0)
        pts = rng.random((32, 3))
        target = rng.normal(size=(32, cfg.output_dim))
        before = enc.encode(pts)
        err_before = np.mean((before - target) ** 2)
        for _ in range(50):
            grad = 2 * (enc.encode(pts) - target) / len(pts)
            enc.encode_backward(pts, grad, learning_rate=0.5)
        err_after = np.mean((enc.encode(pts) - target) ** 2)
        assert err_after < err_before * 0.5

    def test_parameter_count(self):
        cfg = HashGridConfig(num_levels=3, feature_dim=2, table_size=2**10,
                             base_resolution=4, max_resolution=16)
        assert HashGridEncoder(cfg).parameter_count() == 3 * 2**10 * 2

    def test_lookup_flops_positive(self):
        cfg = HashGridConfig(num_levels=3, table_size=2**10,
                             base_resolution=4, max_resolution=16)
        assert HashGridEncoder(cfg).lookup_flops_per_point() > 0

    def test_seeded_encoders_identical(self, rng):
        cfg = HashGridConfig(num_levels=2, table_size=2**10,
                             base_resolution=4, max_resolution=8)
        pts = rng.random((5, 3))
        np.testing.assert_array_equal(
            HashGridEncoder(cfg, seed=9).encode(pts),
            HashGridEncoder(cfg, seed=9).encode(pts),
        )
