"""Tests for ray/AABB intersection and sampling."""

import numpy as np
import pytest

from repro.nerf.rays import ray_aabb_intersect, sample_along_rays


class TestIntersect:
    def test_ray_through_center_hits(self):
        o = np.array([[-1.0, 0.5, 0.5]])
        d = np.array([[1.0, 0.0, 0.0]])
        t_near, t_far, hit = ray_aabb_intersect(o, d)
        assert hit[0]
        assert t_near[0] == pytest.approx(1.0)
        assert t_far[0] == pytest.approx(2.0)

    def test_ray_missing_cube(self):
        o = np.array([[-1.0, 5.0, 0.5]])
        d = np.array([[1.0, 0.0, 0.0]])
        _, _, hit = ray_aabb_intersect(o, d)
        assert not hit[0]

    def test_origin_inside_cube(self):
        o = np.array([[0.5, 0.5, 0.5]])
        d = np.array([[0.0, 0.0, 1.0]])
        t_near, t_far, hit = ray_aabb_intersect(o, d)
        assert hit[0]
        assert t_near[0] == pytest.approx(0.0)
        assert t_far[0] == pytest.approx(0.5)

    def test_diagonal_ray(self):
        o = np.array([[-1.0, -1.0, -1.0]])
        d = np.array([[1.0, 1.0, 1.0]]) / np.sqrt(3)
        t_near, t_far, hit = ray_aabb_intersect(o, d)
        assert hit[0]
        assert t_far[0] > t_near[0] > 0

    def test_axis_parallel_ray_outside(self):
        o = np.array([[2.0, 0.5, 0.5]])
        d = np.array([[0.0, 1.0, 0.0]])
        _, _, hit = ray_aabb_intersect(o, d)
        assert not hit[0]


class TestSampling:
    def test_shapes(self, rng):
        o = np.tile([[-1.0, 0.5, 0.5]], (5, 1))
        d = np.tile([[1.0, 0.0, 0.0]], (5, 1))
        points, deltas, hit = sample_along_rays(o, d, 16)
        assert points.shape == (5, 16, 3)
        assert deltas.shape == (5, 16)
        assert hit.shape == (5,)

    def test_points_inside_cube(self):
        o = np.array([[-2.0, 0.3, 0.7]])
        d = np.array([[1.0, 0.1, -0.05]])
        d = d / np.linalg.norm(d)
        points, _, hit = sample_along_rays(o, d, 32)
        assert hit[0]
        assert points.min() >= 0.0
        assert points.max() < 1.0

    def test_deltas_cover_span(self):
        o = np.array([[-1.0, 0.5, 0.5]])
        d = np.array([[1.0, 0.0, 0.0]])
        _, deltas, _ = sample_along_rays(o, d, 10)
        assert deltas.sum() == pytest.approx(1.0)  # chord length through cube

    def test_missed_ray_zero_deltas(self):
        o = np.array([[5.0, 5.0, 5.0]])
        d = np.array([[1.0, 0.0, 0.0]])
        _, deltas, hit = sample_along_rays(o, d, 8)
        assert not hit[0]
        np.testing.assert_array_equal(deltas, np.zeros((1, 8)))

    def test_points_monotone_along_ray(self):
        o = np.array([[-1.0, 0.5, 0.5]])
        d = np.array([[1.0, 0.0, 0.0]])
        points, _, _ = sample_along_rays(o, d, 16)
        assert np.all(np.diff(points[0, :, 0]) > 0)

    def test_jitter_stays_in_cube(self, rng):
        o = np.tile([[-1.0, 0.5, 0.5]], (20, 1))
        d = np.tile([[1.0, 0.0, 0.0]], (20, 1))
        points, _, _ = sample_along_rays(o, d, 16, jitter_rng=rng)
        assert points.min() >= 0.0
        assert points.max() < 1.0

    def test_jitter_changes_positions(self, rng):
        o = np.array([[-1.0, 0.5, 0.5]])
        d = np.array([[1.0, 0.0, 0.0]])
        a, _, _ = sample_along_rays(o, d, 16)
        b, _, _ = sample_along_rays(o, d, 16, jitter_rng=rng)
        assert not np.allclose(a, b)
