"""Tests for ASDR algorithm configuration objects."""

import pytest

from repro.core.config import (
    ASDRConfig,
    AdaptiveSamplingConfig,
    ApproximationConfig,
)
from repro.errors import ConfigurationError


class TestAdaptiveSamplingConfig:
    def test_defaults_valid(self):
        cfg = AdaptiveSamplingConfig()
        assert cfg.probe_stride == 5
        assert cfg.threshold == pytest.approx(1.0 / 2048.0)

    def test_candidate_counts_ascending_ends_full(self):
        cfg = AdaptiveSamplingConfig()
        counts = cfg.candidate_counts(192)
        assert counts[-1] == 192
        assert counts == sorted(counts)

    def test_candidate_counts_respect_min(self):
        cfg = AdaptiveSamplingConfig(min_samples=6)
        assert min(cfg.candidate_counts(16)) >= 6

    def test_candidate_counts_deduplicated(self):
        cfg = AdaptiveSamplingConfig(candidate_fractions=(0.25, 0.26))
        counts = cfg.candidate_counts(8)  # both fractions round to 2 -> min 4
        assert len(counts) == len(set(counts))

    def test_paper_example_twelve_points(self):
        """1/16 of 192 = 12, the paper's background-pixel budget."""
        cfg = AdaptiveSamplingConfig()
        assert 12 in cfg.candidate_counts(192)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probe_stride": 0},
            {"threshold": -0.1},
            {"candidate_fractions": ()},
            {"candidate_fractions": (0.5, 0.25)},
            {"candidate_fractions": (0.5, 1.5)},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveSamplingConfig(**kwargs)


class TestApproximationConfig:
    def test_group_one_disabled(self):
        assert not ApproximationConfig(1).enabled

    def test_group_two_enabled(self):
        assert ApproximationConfig(2).enabled

    def test_invalid_group_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproximationConfig(0)


class TestASDRConfig:
    def test_defaults(self):
        cfg = ASDRConfig()
        assert cfg.adaptive is not None
        assert cfg.approximation is not None
        assert cfg.early_termination is None

    def test_all_disabled_is_baseline(self):
        cfg = ASDRConfig(adaptive=None, approximation=None)
        assert cfg.adaptive is None
        assert cfg.approximation is None

    def test_invalid_early_termination(self):
        with pytest.raises(ConfigurationError):
            ASDRConfig(early_termination=1.5)
