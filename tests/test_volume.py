"""Tests for volume rendering (Eq. 1) and its helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nerf.volume import (
    alphas_from_sigmas,
    composite,
    composite_prefix,
    composite_subsample,
    early_termination_counts,
    subsample_indices,
    transmittance,
)


def _ray(sigmas, colors=None, delta=0.1):
    sigmas = np.asarray(sigmas, dtype=float)[None, :]
    n = sigmas.shape[1]
    if colors is None:
        colors = np.ones((1, n, 3)) * 0.5
    deltas = np.full((1, n), delta)
    return sigmas, np.asarray(colors, dtype=float), deltas


class TestAlphasTransmittance:
    def test_zero_density_zero_alpha(self):
        alphas = alphas_from_sigmas(np.zeros((1, 4)), np.full((1, 4), 0.1))
        np.testing.assert_array_equal(alphas, np.zeros((1, 4)))

    def test_alpha_monotone_in_sigma(self):
        deltas = np.full((1, 3), 0.1)
        a1 = alphas_from_sigmas(np.array([[1.0, 2.0, 4.0]]), deltas)
        assert np.all(np.diff(a1[0]) > 0)

    def test_transmittance_starts_at_one(self):
        alphas = np.array([[0.5, 0.5, 0.5]])
        trans = transmittance(alphas)
        assert trans[0, 0] == pytest.approx(1.0)

    def test_transmittance_monotone_decreasing(self, rng):
        alphas = rng.random((5, 10)) * 0.9
        trans = transmittance(alphas)
        assert np.all(np.diff(trans, axis=-1) <= 1e-12)


class TestComposite:
    def test_empty_ray_is_background(self):
        sigmas, colors, deltas = _ray([0, 0, 0, 0])
        rgb, opacity = composite(sigmas, colors, deltas, background=1.0)
        np.testing.assert_allclose(rgb, np.ones((1, 3)))
        assert opacity[0] == pytest.approx(0.0)

    def test_opaque_ray_is_first_color(self):
        colors = np.zeros((1, 4, 3))
        colors[0, 0] = [0.2, 0.4, 0.6]
        sigmas, _, deltas = _ray([1e5, 0, 0, 0])
        rgb, opacity = composite(sigmas, colors, deltas)
        np.testing.assert_allclose(rgb[0], [0.2, 0.4, 0.6], atol=1e-6)
        assert opacity[0] == pytest.approx(1.0, abs=1e-6)

    def test_output_bounded_by_colors_and_background(self, rng):
        sigmas = rng.random((8, 16)) * 20
        colors = rng.random((8, 16, 3))
        deltas = np.full((8, 16), 0.05)
        rgb, _ = composite(sigmas, colors, deltas, background=1.0)
        assert np.all(rgb >= 0) and np.all(rgb <= 1 + 1e-9)

    def test_weights_normalised(self, rng):
        """Opacity + residual transmittance == 1 by construction."""
        sigmas = rng.random((4, 12)) * 30
        colors = rng.random((4, 12, 3))
        deltas = np.full((4, 12), 0.03)
        _, opacity = composite(sigmas, colors, deltas)
        assert np.all(opacity <= 1 + 1e-9)

    @given(st.floats(0.0, 50.0), st.floats(0.01, 0.5))
    @settings(max_examples=25)
    def test_homogeneous_medium_analytic(self, sigma, delta):
        """Constant density/color reduces to the analytic Beer-Lambert mix."""
        n = 32
        sigmas = np.full((1, n), sigma)
        colors = np.full((1, n, 3), 0.3)
        deltas = np.full((1, n), delta)
        rgb, opacity = composite(sigmas, colors, deltas, background=1.0)
        expected_opacity = 1.0 - np.exp(-sigma * delta * n)
        assert opacity[0] == pytest.approx(expected_opacity, abs=1e-6)
        expected_rgb = 0.3 * expected_opacity + (1 - expected_opacity)
        np.testing.assert_allclose(rgb[0], expected_rgb, atol=1e-6)


class TestPrefixAndSubsample:
    def test_prefix_full_equals_composite(self, rng):
        sigmas = rng.random((3, 8)) * 10
        colors = rng.random((3, 8, 3))
        deltas = np.full((3, 8), 0.1)
        full, _ = composite(sigmas, colors, deltas)
        prefix = composite_prefix(sigmas, colors, deltas, np.full(3, 8))
        np.testing.assert_allclose(prefix, full)

    def test_prefix_zero_is_background(self, rng):
        sigmas = rng.random((2, 6)) * 10
        colors = rng.random((2, 6, 3))
        deltas = np.full((2, 6), 0.1)
        rgb = composite_prefix(sigmas, colors, deltas, np.zeros(2, dtype=int),
                               background=0.7)
        np.testing.assert_allclose(rgb, np.full((2, 3), 0.7))

    def test_subsample_indices_endpoints(self):
        idx = subsample_indices(48, 5)
        assert idx[0] == 0
        assert idx[-1] == 47
        assert len(idx) == 5

    def test_subsample_indices_full(self):
        idx = subsample_indices(8, 8)
        np.testing.assert_array_equal(idx, np.arange(8))

    def test_subsample_indices_clamps(self):
        assert len(subsample_indices(4, 100)) == 4
        assert len(subsample_indices(16, 1)) == 1

    def test_subsample_preserves_optical_depth(self):
        """Homogeneous medium: subsampled render matches the full one."""
        n = 64
        sigmas = np.full((1, n), 5.0)
        colors = np.full((1, n, 3), 0.4)
        deltas = np.full((1, n), 0.02)
        full, _ = composite(sigmas, colors, deltas)
        sub = composite_subsample(sigmas, colors, deltas, 8)
        np.testing.assert_allclose(sub, full, atol=1e-3)

    def test_subsample_of_empty_ray_is_background(self):
        sigmas, colors, deltas = _ray([0] * 16)
        rgb = composite_subsample(sigmas, colors, deltas, 4, background=1.0)
        np.testing.assert_allclose(rgb, np.ones((1, 3)))


class TestEarlyTermination:
    def test_transparent_ray_uses_all(self):
        sigmas, _, deltas = _ray([0.01] * 8)
        counts = early_termination_counts(sigmas, deltas)
        assert counts[0] == 8

    def test_opaque_wall_stops_early(self):
        sigmas, _, deltas = _ray([0, 0, 1e5, 1, 1, 1, 1, 1])
        counts = early_termination_counts(sigmas, deltas, 0.99)
        assert counts[0] == 3

    def test_counts_in_valid_range(self, rng):
        sigmas = rng.random((10, 16)) * 50
        deltas = np.full((10, 16), 0.1)
        counts = early_termination_counts(sigmas, deltas)
        assert np.all(counts >= 1) and np.all(counts <= 16)

    def test_lower_threshold_stops_earlier(self, rng):
        sigmas = rng.random((10, 32)) * 10
        deltas = np.full((10, 32), 0.1)
        strict = early_termination_counts(sigmas, deltas, 0.999)
        loose = early_termination_counts(sigmas, deltas, 0.5)
        assert np.all(loose <= strict)

    def test_truncation_error_bounded(self, rng):
        """Compositing only the ET prefix changes the color by <= 1-thr."""
        sigmas = rng.random((20, 32)) * 30
        colors = rng.random((20, 32, 3))
        deltas = np.full((20, 32), 0.05)
        full, _ = composite(sigmas, colors, deltas)
        counts = early_termination_counts(sigmas, deltas, 0.99)
        truncated = composite_prefix(sigmas, colors, deltas, counts)
        assert np.max(np.abs(full - truncated)) <= 0.011 + 0.05
