"""Cluster serving: sharding, routing, migration and fleet invariants.

These tests drive :class:`repro.serving.cluster.ClusterServer` with the
same small synthetic sequences the single-box serving tests use, pinning
the fleet-level invariants:

* **pass-through** — a one-shard cluster is bit-identical to serving the
  same submissions on a bare :class:`SequenceServer`;
* **conservation** — fleet aggregates are exactly the sum of the nested
  shard reports (no frame or cycle is double-counted by placement);
* **placement value** — the content-affinity router beats the
  placement-blind hash router on aggregate cycles whenever it keeps a
  twin pair on one box;
* **migration** — a temporal-cache hand-off never costs more than a cold
  restart of the same tail, and serve() stays re-entrant around it;
* **hygiene** — no serving-layer cache is keyed on ``id()`` (the bug
  class this PR removes) — enforced by an AST scan.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.errors import ConfigurationError
from repro.scenes.cameras import camera_path
from repro.serving.cluster import (
    ROUTER_NAMES,
    ClusterServer,
    Migration,
    cluster_bench_summary,
)
from repro.serving.server import SequenceServer
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG
from tests.test_serving import (
    FRAMES,
    SIZE,
    _distinct_paths,
    _request,
    synthetic_sequence,
)


def _accelerator(config=None) -> ASDRAccelerator:
    return ASDRAccelerator(
        config or ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


def _cluster(n_shards: int, varied=False, requests=None, **kwargs):
    """A cluster of ``n_shards`` identical server-scale shards with the
    given requests (default: distinct-path clients ``c0..``) admitted."""
    cluster = ClusterServer(
        [_accelerator() for _ in range(n_shards)], **kwargs
    )
    if requests is None:
        requests = [
            _request(f"c{i}", path)
            for i, path in enumerate(_distinct_paths(3))
        ]
    for request in requests:
        cluster.submit(
            request, synthetic_sequence(request.path, varied=varied)
        )
    return cluster


def _twin_requests():
    """``alpha``/``beta`` share one path (twins); crc32 parity splits the
    pair on a two-shard fleet under the ``random`` router (checked by
    ``test_random_router_splits_the_twin_pair``), so affinity-vs-random
    comparisons exercise exactly the placement decision."""
    shared = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
    lone = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.6)
    return [
        _request("alpha", shared),
        _request("beta", shared),
        _request("gamma", lone),
    ]


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------
class TestClusterConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigurationError):
            ClusterServer([])

    def test_rejects_unknown_router(self):
        with pytest.raises(ConfigurationError, match="router"):
            ClusterServer([_accelerator()], router="hash_ring")

    def test_rejects_duplicate_shard_names(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ClusterServer(
                [_accelerator(), _accelerator()], names=["a", "a"]
            )

    def test_rejects_name_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            ClusterServer([_accelerator()], names=["a", "b"])

    def test_rejects_nonpositive_scale_out_threshold(self):
        with pytest.raises(ConfigurationError):
            ClusterServer([_accelerator()], scale_out_threshold=0)

    def test_rejects_duplicate_client(self):
        cluster = _cluster(2)
        path = _distinct_paths(1)[0]
        with pytest.raises(ConfigurationError, match="duplicate client"):
            cluster.submit(_request("c0", path), synthetic_sequence(path))

    def test_serve_needs_clients(self):
        cluster = ClusterServer([_accelerator()])
        with pytest.raises(ConfigurationError, match="no clients"):
            cluster.serve("fifo")

    def test_default_shard_names(self):
        assert _cluster(2).shard_names == ["shard0", "shard1"]


# ----------------------------------------------------------------------
# Single-shard pass-through (bit-identity)
# ----------------------------------------------------------------------
class TestSingleShardIdentity:
    @pytest.mark.parametrize(
        "policy", ["fifo", "round_robin", "deadline", "round_robin_preemptive"]
    )
    def test_one_shard_cluster_matches_bare_server(self, policy):
        requests = [
            _request(f"c{i}", path)
            for i, path in enumerate(_distinct_paths(3))
        ]
        cluster = _cluster(1, varied=True, requests=requests)
        bare = SequenceServer(_accelerator())
        for request in requests:
            bare.submit(
                request, synthetic_sequence(request.path, varied=True)
            )
        fleet = cluster.serve(policy)
        assert fleet.shards[0].to_dict() == bare.serve(policy).to_dict()
        assert fleet.total_busy_cycles == bare.serve(policy).busy_cycles


# ----------------------------------------------------------------------
# Fleet conservation
# ----------------------------------------------------------------------
class TestFleetConservation:
    @pytest.mark.parametrize("router", ROUTER_NAMES)
    def test_totals_are_shard_sums(self, router):
        requests = [
            _request(f"c{i}", path)
            for i, path in enumerate(_distinct_paths(4))
        ]
        cluster = _cluster(2, requests=requests, router=router)
        report = cluster.serve("round_robin")
        assert report.total_busy_cycles == sum(
            s.busy_cycles for s in report.shards
        )
        assert report.total_frames == sum(
            s.total_frames for s in report.shards
        )
        assert report.total_frames == 4 * FRAMES
        # Every client served exactly once, on the shard it was placed on.
        served = {
            c.client_id: name
            for name, shard in zip(report.shard_names, report.shards)
            for c in shard.clients
        }
        assert served == report.placements

    def test_slowdowns_cover_every_client(self):
        cluster = _cluster(2, requests=_twin_requests())
        report = cluster.serve("round_robin")
        slowdowns = report.client_slowdowns()
        assert set(slowdowns) == {"alpha", "beta", "gamma"}
        assert all(s > 0 for s in slowdowns.values())
        assert 0.0 < report.fairness <= 1.0
        assert report.latency_percentile_ms(95) >= report.latency_percentile_ms(50) > 0


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_affinity_colocates_twins(self):
        cluster = _cluster(
            2, requests=_twin_requests(), router="affinity"
        )
        assert cluster.placement_of("alpha") == cluster.placement_of("beta")

    def test_random_router_splits_the_twin_pair(self):
        cluster = _cluster(2, requests=_twin_requests(), router="random")
        assert cluster.placement_of("alpha") != cluster.placement_of("beta")

    def test_round_robin_cycles_shards(self):
        requests = [
            _request(f"c{i}", path)
            for i, path in enumerate(_distinct_paths(4))
        ]
        cluster = _cluster(2, requests=requests, router="round_robin")
        assert [cluster.placement_of(f"c{i}") for i in range(4)] == [
            "shard0", "shard1", "shard0", "shard1",
        ]

    def test_affinity_beats_random_on_aggregate_cycles(self):
        """The acceptance-criterion ordering at test scale: co-locating
        the twin pair lets the second stream ride scan-out replay, while
        splitting it re-executes the whole sequence on the other box."""
        affinity = _cluster(
            2, requests=_twin_requests(), router="affinity"
        ).serve("round_robin")
        random_ = _cluster(
            2, requests=_twin_requests(), router="random"
        ).serve("round_robin")
        assert affinity.total_frames == random_.total_frames
        assert affinity.total_busy_cycles < random_.total_busy_cycles

    def test_pose_affinity_colocates_overlapping_keyframes(self):
        """Different paths whose Phase I keyframes share a pose land on
        the same shard — the cross-client keyframe replay lever only
        fires in one box's scheduler."""
        long_path = camera_path("orbit", FRAMES + 2, SIZE, SIZE, arc=0.3)
        short_path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        # Distinct content keys (different path cache keys) ...
        assert (
            _request("a", long_path).content_key()
            != _request("b", short_path).content_key()
        )
        # ... but both start from the same keyframe pose.
        cluster = ClusterServer(
            [_accelerator(), _accelerator()], router="affinity"
        )
        cluster.submit(_request("a", long_path), synthetic_sequence(long_path))
        cluster.submit(
            _request("b", short_path), synthetic_sequence(short_path)
        )
        assert cluster.placement_of("a") == cluster.placement_of("b")

    def test_least_loaded_spreads_unrelated_clients(self):
        requests = [
            _request(f"c{i}", path)
            for i, path in enumerate(_distinct_paths(2))
        ]
        cluster = _cluster(2, requests=requests, router="least_loaded")
        assert cluster.placement_of("c0") != cluster.placement_of("c1")


# ----------------------------------------------------------------------
# Migration
# ----------------------------------------------------------------------
class TestMigration:
    def _migrating_cluster(self):
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
        requests = [
            _request("mover", path),
            _request("stay", _distinct_paths(2)[1]),
        ]
        return _cluster(
            2, varied=True, requests=requests, router="least_loaded"
        )

    def test_migration_splits_frames_across_shards(self):
        cluster = self._migrating_cluster()
        dst = [
            n for n in cluster.shard_names
            if n != cluster.placement_of("mover")
        ][0]
        report = cluster.serve(
            "round_robin", [Migration("mover", 2, dst)]
        )
        head = report.shard(cluster.placement_of("mover")).client("mover")
        tail = report.shard(dst).client("mover")
        assert head.frames == 2
        assert tail.frames == FRAMES - 2
        assert report.total_frames == 2 * FRAMES
        assert report.num_migrations == 1
        record = report.migrations[0]
        assert record["client"] == "mover"
        assert record["to"] == dst
        assert record["after_frame"] == 2
        assert record["handoff"] is True
        assert record["tail_arrival_cycle"] > 0

    def test_handoff_never_costs_more_than_cold_restart(self):
        cluster = self._migrating_cluster()
        dst = [
            n for n in cluster.shard_names
            if n != cluster.placement_of("mover")
        ][0]
        warm = cluster.serve(
            "round_robin", [Migration("mover", 2, dst, handoff=True)]
        )
        cold = cluster.serve(
            "round_robin", [Migration("mover", 2, dst, handoff=False)]
        )
        assert warm.migrations[0]["handoff"] is True
        assert cold.migrations[0]["handoff"] is False
        assert warm.total_frames == cold.total_frames
        assert warm.total_busy_cycles <= cold.total_busy_cycles

    def test_serve_is_reentrant_around_migrations(self):
        cluster = self._migrating_cluster()
        dst = [
            n for n in cluster.shard_names
            if n != cluster.placement_of("mover")
        ][0]
        before = cluster.serve("round_robin").to_dict()
        cluster.serve("round_robin", [Migration("mover", 2, dst)])
        assert cluster.serve("round_robin").to_dict() == before

    def test_migration_validation(self):
        cluster = self._migrating_cluster()
        src = cluster.placement_of("mover")
        dst = [n for n in cluster.shard_names if n != src][0]
        for bad in [
            Migration("ghost", 2, dst),        # unknown client
            Migration("mover", 2, "shard9"),   # unknown shard
            Migration("mover", 2, src),        # already there
            Migration("mover", 0, dst),        # nothing served at source
            Migration("mover", FRAMES, dst),   # nothing left to move
        ]:
            with pytest.raises(ConfigurationError):
                cluster.serve("round_robin", [bad])
        with pytest.raises(ConfigurationError, match="more than once"):
            cluster.serve(
                "round_robin",
                [Migration("mover", 1, dst), Migration("mover", 2, dst)],
            )

    def test_cyclic_migrations_rejected(self):
        cluster = self._migrating_cluster()
        a = cluster.placement_of("mover")
        b = cluster.placement_of("stay")
        assert a != b
        with pytest.raises(ConfigurationError, match="cycle"):
            cluster.serve(
                "round_robin",
                [Migration("mover", 2, b), Migration("stay", 2, a)],
            )


# ----------------------------------------------------------------------
# Elastic scale-out
# ----------------------------------------------------------------------
class TestScaleOut:
    def test_spare_joins_above_threshold(self):
        paths = _distinct_paths(2)
        # Threshold sized to admit one client but not two: the second
        # submission's projected load tips the spare into the fleet.
        one_client = ClusterServer._fresh_points(synthetic_sequence(paths[0]))
        cluster = ClusterServer(
            [_accelerator()],
            router="least_loaded",
            spare_accelerators=[_accelerator()],
            scale_out_threshold=one_client + one_client // 2,
        )
        cluster.submit(_request("c0", paths[0]), synthetic_sequence(paths[0]))
        assert cluster.num_shards == 1
        cluster.submit(_request("c1", paths[1]), synthetic_sequence(paths[1]))
        assert cluster.num_shards == 2
        assert cluster.placement_of("c1") == "shard1"
        assert len(cluster.scale_out_events) == 1
        event = cluster.scale_out_events[0]
        assert event["client"] == "c1"
        assert event["shard"] == "shard1"
        report = cluster.serve("round_robin")
        assert report.total_frames == 2 * FRAMES
        assert [dict(e) for e in cluster.scale_out_events] == report.scale_out_events

    def test_affinity_match_does_not_scale_out(self):
        alpha, beta = _twin_requests()[:2]
        one_client = ClusterServer._fresh_points(
            synthetic_sequence(alpha.path)
        )
        cluster = ClusterServer(
            [_accelerator()],
            router="affinity",
            spare_accelerators=[_accelerator()],
            scale_out_threshold=one_client,
        )
        for request in (alpha, beta):
            cluster.submit(request, synthetic_sequence(request.path))
        # beta rides alpha's content: no fresh work, no new shard.
        assert cluster.num_shards == 1


# ----------------------------------------------------------------------
# Determinism and heterogeneous fleets
# ----------------------------------------------------------------------
class TestClusterDeterminism:
    def test_identical_clusters_serve_identically(self):
        reports = [
            _cluster(2, varied=True, requests=_twin_requests())
            .serve("round_robin_preemptive")
            .to_dict()
            for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_bench_summary_schema(self):
        report = _cluster(2, requests=_twin_requests()).serve("round_robin")
        summary = cluster_bench_summary({"affinity": report})
        assert summary["schema"] == "cluster_bench/v1"
        entry = summary["routers"]["affinity"]
        assert entry["router"] == "affinity"
        assert entry["shards"] == 2
        assert entry["total_busy_cycles"] == report.total_busy_cycles
        assert set(entry["utilisation"]) == set(report.shard_names)


class TestHeterogeneousFleet:
    def test_edge_and_server_shards_mix(self):
        cluster = ClusterServer(
            [_accelerator(ArchConfig.server()), _accelerator(ArchConfig.edge())],
            names=["server0", "edge0"],
            router="least_loaded",
        )
        requests = [
            _request(f"c{i}", path)
            for i, path in enumerate(_distinct_paths(2))
        ]
        for request in requests:
            cluster.submit(request, synthetic_sequence(request.path))
        report = cluster.serve("round_robin")
        assert report.total_frames == 2 * FRAMES
        assert report.total_busy_cycles == sum(
            s.busy_cycles for s in report.shards
        )
        # Genuinely heterogeneous design points (edge is a smaller box;
        # both clock at 1 GHz, so the asymmetry shows up in cycles).
        assert (
            cluster.shard("server0").accelerator.config
            != cluster.shard("edge0").accelerator.config
        )
        assert report.makespan_seconds > 0
        assert 0.0 < report.fairness <= 1.0


# ----------------------------------------------------------------------
# Serving-layer cache hygiene (the bug class this PR removes)
# ----------------------------------------------------------------------
class TestNoIdentityKeyedCaches:
    def test_no_id_calls_in_serving_sources(self):
        """``id()`` must not appear as a call anywhere in the serving
        layer: object identity is not content identity (CPython reuses
        addresses after garbage collection), so an ``id()``-keyed cache
        can serve one client's cached plans or scan-out prices to a
        different client's trace.  AST-level scan so comments and the
        ``PendingFrame.id`` property don't false-positive."""
        serving = Path(__file__).resolve().parents[1] / "src/repro/serving"
        offenders = []
        for source in sorted(serving.glob("*.py")):
            tree = ast.parse(source.read_text(), filename=str(source))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"
                ):
                    offenders.append(f"{source.name}:{node.lineno}")
        assert not offenders, f"id()-keyed lookups remain: {offenders}"
