"""Tests for image quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.image import lpips_proxy, mse, psnr, ssim


@pytest.fixture()
def image(rng):
    return rng.random((32, 32, 3))


class TestMSE:
    def test_identity_zero(self, image):
        assert mse(image, image) == 0.0

    def test_known_value(self):
        a = np.zeros((4, 4, 3))
        b = np.full((4, 4, 3), 0.5)
        assert mse(a, b) == pytest.approx(0.25)

    def test_symmetric(self, rng, image):
        other = rng.random(image.shape)
        assert mse(image, other) == pytest.approx(mse(other, image))


class TestPSNR:
    def test_identity_infinite(self, image):
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4, 3))
        b = np.full((4, 4, 3), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_monotone_in_noise(self, rng, image):
        small = np.clip(image + rng.normal(0, 0.01, image.shape), 0, 1)
        large = np.clip(image + rng.normal(0, 0.1, image.shape), 0, 1)
        assert psnr(image, small) > psnr(image, large)

    def test_grayscale_supported(self, rng):
        a = rng.random((16, 16))
        b = rng.random((16, 16))
        assert np.isfinite(psnr(a, b))


class TestSSIM:
    def test_identity_one(self, image):
        assert ssim(image, image) == pytest.approx(1.0)

    def test_bounded(self, rng, image):
        noisy = np.clip(image + rng.normal(0, 0.2, image.shape), 0, 1)
        value = ssim(image, noisy)
        assert -1.0 <= value <= 1.0

    def test_monotone_in_noise(self, rng, image):
        small = np.clip(image + rng.normal(0, 0.02, image.shape), 0, 1)
        large = np.clip(image + rng.normal(0, 0.3, image.shape), 0, 1)
        assert ssim(image, small) > ssim(image, large)

    def test_constant_shift_penalised_less_than_structure_loss(self, rng, image):
        shifted = np.clip(image + 0.05, 0, 1)
        scrambled = rng.permutation(image.reshape(-1, 3)).reshape(image.shape)
        assert ssim(image, shifted) > ssim(image, scrambled)


class TestLPIPSProxy:
    def test_identity_zero(self, image):
        assert lpips_proxy(image, image) == pytest.approx(0.0)

    def test_nonnegative(self, rng, image):
        other = rng.random(image.shape)
        assert lpips_proxy(image, other) >= 0

    def test_monotone_in_noise(self, rng, image):
        small = np.clip(image + rng.normal(0, 0.02, image.shape), 0, 1)
        large = np.clip(image + rng.normal(0, 0.3, image.shape), 0, 1)
        assert lpips_proxy(image, small) < lpips_proxy(image, large)

    def test_symmetric(self, rng, image):
        other = rng.random(image.shape)
        assert lpips_proxy(image, other) == pytest.approx(
            lpips_proxy(other, image)
        )

    def test_sensitive_to_edge_changes(self, rng):
        """Structural edits cost more than brightness shifts (perceptual)."""
        base = np.zeros((32, 32, 3))
        base[:, 16:, :] = 1.0  # one strong edge
        brightness = np.clip(base + 0.05, 0, 1)
        moved = np.zeros_like(base)
        moved[:, 8:, :] = 1.0  # edge relocated
        assert lpips_proxy(base, moved) > lpips_proxy(base, brightness)

    def test_small_images(self, rng):
        a, b = rng.random((6, 6, 3)), rng.random((6, 6, 3))
        assert np.isfinite(lpips_proxy(a, b))
