"""Paper-scale configuration tests (marked slow).

These exercise the code paths at the paper's actual dimensions — 16-level
2^19-entry grids, 192-sample rays, 800x800 cameras — without rendering
full frames (that is minutes of NumPy time); deselect with
``-m "not slow"``.
"""

import numpy as np
import pytest

from repro.cim.address import HybridAddressGenerator
from repro.cim.mapping import (
    average_utilization,
    hybrid_utilization,
    storage_utilization,
)
from repro.core.config import AdaptiveSamplingConfig
from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder
from repro.nerf.model import InstantNGPConfig, InstantNGPModel
from repro.scenes.cameras import orbit_cameras

PAPER_GRID = HashGridConfig(
    num_levels=16, table_size=2**19, base_resolution=16, max_resolution=512
)

pytestmark = pytest.mark.slow


class TestPaperScaleGrid:
    def test_sixteen_levels_resolutions(self):
        res = PAPER_GRID.level_resolutions
        assert len(res) == 16
        assert res[0] == 16 and res[-1] == 512

    def test_table_memory_matches_paper(self):
        """16 tables x 2^19 entries x 2 features ~ 60 MB at fp16+overhead."""
        encoder = HashGridEncoder(PAPER_GRID)
        entries = encoder.parameter_count()
        megabytes = entries * 2 / 2**20  # 2 bytes per feature
        assert 30 <= megabytes <= 64

    def test_encoding_at_scale(self):
        encoder = HashGridEncoder(PAPER_GRID)
        rng = np.random.default_rng(0)
        out = encoder.encode(rng.random((512, 3)))
        assert out.shape == (512, 32)
        assert np.all(np.isfinite(out))

    def test_utilization_matches_figure13(self):
        """Paper: 62.20% -> 85.95% average on this exact configuration."""
        orig = average_utilization(storage_utilization(PAPER_GRID))
        hybrid = average_utilization(hybrid_utilization(PAPER_GRID))
        assert orig == pytest.approx(0.622, abs=0.08)
        assert hybrid == pytest.approx(0.8595, abs=0.08)

    def test_hybrid_generator_levels(self):
        gen = HybridAddressGenerator(PAPER_GRID, mode="hybrid")
        dense_levels = [m for m in gen.levels if m.dense]
        # The low-resolution levels (up to ~64^3 < 2^19) de-hash.
        assert 5 <= len(dense_levels) <= 9
        assert all(m.copies >= 1 for m in dense_levels)


class TestPaperScaleSampling:
    def test_192_sample_candidates(self):
        cfg = AdaptiveSamplingConfig()
        counts = cfg.candidate_counts(192)
        assert counts[-1] == 192
        assert counts[0] == 12  # the paper's background budget

    def test_800x800_camera_rays(self):
        camera = orbit_cameras(1, 800, 800)[0]
        sub = camera.rays_for_pixels(np.array([0, 640000 - 1]))
        assert sub[0].shape == (2, 3)

    def test_full_width_model_flop_split(self):
        """The paper-scale model keeps the ~8/92 density/color split."""
        model = InstantNGPModel(InstantNGPConfig(grid=PAPER_GRID))
        d = model.flops_density_per_point()
        c = model.flops_color_per_point()
        assert 0.04 < d / (d + c) < 0.15
