"""Tests for the register-cache model (window approximation vs exact LRU)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cim.cache import (
    RegisterCache,
    exact_lru_hits,
    previous_occurrence_gaps,
    window_hits,
)
from repro.errors import ConfigurationError


class TestPreviousOccurrence:
    def test_no_repeats(self):
        gaps = previous_occurrence_gaps(np.array([1, 2, 3, 4]))
        assert np.all(gaps > 4)  # sentinel: never previously seen

    def test_immediate_repeat(self):
        gaps = previous_occurrence_gaps(np.array([7, 7]))
        assert gaps[1] == 1

    def test_gap_measured_in_accesses(self):
        gaps = previous_occurrence_gaps(np.array([5, 1, 2, 5]))
        assert gaps[3] == 3

    def test_empty_stream(self):
        assert len(previous_occurrence_gaps(np.array([], dtype=int))) == 0


class TestWindowHits:
    def test_zero_window_never_hits(self):
        assert not window_hits(np.array([1, 1, 1]), 0).any()

    def test_window_one_catches_adjacent(self):
        hits = window_hits(np.array([3, 3, 4, 3]), 1)
        np.testing.assert_array_equal(hits, [False, True, False, False])

    def test_large_window_catches_all_repeats(self):
        stream = np.array([1, 2, 3, 1, 2, 3])
        hits = window_hits(stream, 100)
        np.testing.assert_array_equal(hits, [False, False, False, True, True, True])


class TestExactLRU:
    def test_capacity_zero(self):
        assert not exact_lru_hits(np.array([1, 1]), 0).any()

    def test_repeated_scan_with_small_cache_thrashes(self):
        stream = np.tile(np.arange(10), 3)
        hits = exact_lru_hits(stream, 5)
        assert not hits.any()  # classic LRU thrashing

    def test_repeated_scan_with_large_cache_hits(self):
        stream = np.tile(np.arange(10), 3)
        hits = exact_lru_hits(stream, 10)
        assert hits[10:].all()

    def test_mru_retained(self):
        stream = np.array([1, 2, 3, 1, 4, 1])
        hits = exact_lru_hits(stream, 2)
        # 1 evicted by 3 (cap 2), re-missed, then retained.
        np.testing.assert_array_equal(
            hits, [False, False, False, False, False, True]
        )

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40),
           st.integers(1, 6))
    @settings(max_examples=40)
    def test_window_model_vs_lru_bounds(self, stream, capacity):
        """Window(w) hits are a subset of LRU(w): an access-distance <= w
        implies at most w unique entries in the gap."""
        stream = np.array(stream)
        w = window_hits(stream, capacity)
        l = exact_lru_hits(stream, capacity)
        assert np.all(~w | l)  # w implies l


class TestRegisterCache:
    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            RegisterCache(-1)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            RegisterCache(8, window_scale=0.0)

    def test_replay_tracks_stats(self):
        cache = RegisterCache(4)
        stream = np.array([1, 1, 2, 2, 3])
        hits = cache.replay(stream, level=0)
        stats = cache.stats[0]
        assert stats.accesses == 5
        assert stats.hits == int(hits.sum())
        assert stats.misses == 5 - stats.hits

    def test_hit_rate(self):
        cache = RegisterCache(4)
        cache.replay(np.array([9, 9, 9, 9]), level=1)
        assert cache.stats[1].hit_rate == pytest.approx(0.75)

    def test_total_stats_aggregates_levels(self):
        cache = RegisterCache(4)
        cache.replay(np.array([1, 1]), level=0)
        cache.replay(np.array([2, 2]), level=1)
        total = cache.total_stats()
        assert total.accesses == 4
        assert total.hits == 2

    def test_zero_capacity_never_hits(self):
        cache = RegisterCache(0)
        hits = cache.replay(np.array([1, 1, 1]), level=0)
        assert not hits.any()

    def test_larger_cache_never_worse(self, rng):
        stream = rng.integers(0, 30, size=500)
        small = window_hits(stream, 4).sum()
        large = window_hits(stream, 16).sum()
        assert large >= small

    def test_ray_marching_stream_matches_lru(self):
        """On point-group streams (8 vertices per point, consecutive points
        sharing voxels) the window model equals exact LRU — the scenario
        the encoding engine replays."""
        rng = np.random.default_rng(3)
        groups = []
        current = rng.integers(0, 1000, size=8)
        for _ in range(200):
            if rng.random() < 0.6:  # same voxel as previous point
                groups.append(current.copy())
            else:
                current = rng.integers(0, 1000, size=8)
                groups.append(current.copy())
        stream = np.concatenate(groups)
        w = window_hits(stream, 8)
        l = exact_lru_hits(stream, 8)
        assert abs(w.mean() - l.mean()) < 0.05
