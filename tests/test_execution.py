"""The resumable execution engine: bit-identity, suspension, golden pin.

:class:`repro.exec.execution.FrameExecution` must be a *refactor*, not a
re-pricing: running a cursor to completion — in one go, step by step, or
interleaved with other cursors — has to reproduce the monolithic
simulator's cycles and energy exactly.  These tests pin that:

* **golden** — stepping the golden two-frame sequence one wavefront at a
  time reproduces the cycle counts stored in
  ``tests/golden/sequence_trace.json`` (the same numbers
  ``simulate_sequence`` is pinned to);
* **suspension** — two frames' executions interleaved step by step equal
  their uninterrupted runs bit-for-bit (cycles, energy, encoding stats);
* **accounting** — the wavefront log still sums to ``total_cycles``,
  ``remaining_points``/``points_done`` partition the frame's points, and
  ``abandon`` charges energy for exactly the executed prefix.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.cim.cache import TemporalVertexCache
from repro.errors import SimulationError
from repro.exec.execution import FrameExecution, sequence_executions
from repro.exec.frame_trace import FrameTrace
from repro.exec.sequence import SequenceTrace
from repro.scenes.cameras import camera_path
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG

GOLDEN_PATH = Path(__file__).parent / "golden" / "sequence_trace.json"


@pytest.fixture(scope="module")
def accelerator():
    return ASDRAccelerator(
        ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


def _varied_trace(size: int = 16, seed_budgets: int = 8) -> FrameTrace:
    """A budget-map trace with several budget groups, so the execution
    splits into multiple wavefront steps at the server's 64-ray width."""
    camera = camera_path("orbit", 1, size, size, arc=0.3).cameras()[0]
    budgets = 1 + (np.arange(size * size) % seed_budgets) * 2
    return FrameTrace.from_budgets(camera, budgets.astype(np.int64))


def _sequence(frames: int = 3, size: int = 16) -> SequenceTrace:
    path = camera_path("orbit", frames, size, size, arc=0.4)
    traces = [
        FrameTrace.from_budgets(
            cam, (1 + (np.arange(size * size) % 5) * 3).astype(np.int64)
        )
        for cam in path.cameras()
    ]
    return SequenceTrace(
        frames=traces,
        path_key=path.cache_key(),
        kind="asdr",
        planned=[k == 0 for k in range(frames)],
    )


def _reports_equal(a, b) -> bool:
    return (
        a.total_cycles == b.total_cycles
        and a.bus_cycles == b.bus_cycles
        and a.buffer_stall_cycles == b.buffer_stall_cycles
        and a.encoding.cycles == b.encoding.cycles
        and a.encoding.cache_hits == b.encoding.cache_hits
        and a.encoding.temporal_hits == b.encoding.temporal_hits
        and a.mlp.cycles == b.mlp.cycles
        and a.render.cycles == b.render.cycles
        and a.energy_by_component == b.energy_by_component
    )


class TestRunToCompletion:
    def test_stepped_equals_monolithic_simulate_trace(self, accelerator):
        trace = _varied_trace()
        mono = accelerator.simulate_trace(trace)

        ex = accelerator.trace_execution(trace)
        assert ex.steps_total > 1, "fixture must be multi-step"
        while not ex.done:
            ex.step()
        stepped = ex.finish()
        assert _reports_equal(mono, stepped)

    def test_quantum_runs_equal_single_run(self, accelerator):
        trace = _varied_trace()
        mono = accelerator.simulate_trace(trace)
        for quantum in (1, 2, 3, 5):
            ex = accelerator.trace_execution(trace)
            while not ex.done:
                ex.run(max_steps=quantum)
            assert _reports_equal(mono, ex.finish()), f"quantum={quantum}"

    def test_cursor_accounting(self, accelerator):
        trace = _varied_trace()
        log = []
        ex = accelerator.trace_execution(trace, wavefront_log=log)
        total_points = trace.density_points
        assert ex.points_done == 0
        assert ex.remaining_points == total_points
        charges = []
        while not ex.done:
            before = ex.service_cycles
            charges.append(ex.step())
            assert ex.service_cycles - before == charges[-1]
            assert ex.points_done + ex.remaining_points == total_points
        report = ex.finish()
        assert report.total_cycles == sum(charges)
        assert report.total_cycles == sum(c for _, c in log)
        assert ex.steps_done == ex.steps_total

    def test_step_and_finish_guards(self, accelerator):
        trace = _varied_trace()
        ex = accelerator.trace_execution(trace)
        ex.finish()
        with pytest.raises(SimulationError):
            ex.step()
        with pytest.raises(SimulationError):
            ex.finish()
        with pytest.raises(SimulationError):
            ex.abandon()
        with pytest.raises(SimulationError):
            accelerator.trace_execution(trace).run(max_steps=0)

    def test_rejects_non_trace(self, accelerator):
        with pytest.raises(SimulationError):
            FrameExecution(accelerator, "not a trace")


class TestSuspension:
    def test_interleaved_executions_are_bit_identical(self, accelerator):
        """Alternate two frames' wavefronts (the preemption pattern) and
        compare against uninterrupted runs of the same frames."""
        seq = _sequence(frames=2)
        solo = [
            accelerator.simulate_sequence_frame(seq, k) for k in range(2)
        ]
        cold = SequenceTrace.from_dict(seq.to_dict())
        a = accelerator.frame_execution(cold, 0)
        b = accelerator.frame_execution(cold, 1)
        toggle = 0
        while not (a.done and b.done):
            ex = (a, b)[toggle % 2]
            if not ex.done:
                ex.step()
            toggle += 1
        assert _reports_equal(solo[0], a.finish())
        assert _reports_equal(solo[1], b.finish())

    def test_interleaving_with_private_temporal_caches(self, accelerator):
        """Two tenants' sequences advanced in alternating quanta, each
        with its own temporal cache, price exactly like two solo runs."""
        seq_a = _sequence(frames=3)
        seq_b = _sequence(frames=2, size=16)
        solo_a = accelerator.simulate_sequence(seq_a).total_cycles
        solo_b = accelerator.simulate_sequence(seq_b).total_cycles

        cold_a = SequenceTrace.from_dict(seq_a.to_dict())
        cold_b = SequenceTrace.from_dict(seq_b.to_dict())
        gens = {
            "a": sequence_executions(
                accelerator, cold_a, temporal=TemporalVertexCache()
            ),
            "b": sequence_executions(
                accelerator, cold_b, temporal=TemporalVertexCache()
            ),
        }
        active = {key: next(gen) for key, gen in gens.items()}
        totals = {"a": 0, "b": 0}
        turn = 0
        while active:
            key = sorted(active)[turn % len(active)]
            ex = active[key]
            totals[key] += ex.run(max_steps=2)
            if ex.done:
                ex.finish()
                nxt = next(gens[key], None)
                if nxt is None:
                    del active[key]
                else:
                    active[key] = nxt
            turn += 1
        assert totals["a"] == solo_a
        assert totals["b"] == solo_b

    def test_abandon_prices_executed_prefix_only(self, accelerator):
        trace = _varied_trace()
        full = accelerator.simulate_trace(trace)
        ex = accelerator.trace_execution(trace)
        partial_cycles = ex.step() + ex.step()
        report = ex.abandon()
        assert report.total_cycles == partial_cycles
        assert report.total_cycles < full.total_cycles
        assert report.bus_cycles == 0, "an undelivered frame bills no scan-out"
        assert 0 < report.energy_joules < full.energy_joules


class TestScanoutMode:
    def test_replay_frames_execute_as_single_scanout_step(self, accelerator):
        path = camera_path("orbit", 2, 8, 8, arc=0.3, hold=2)
        cams = path.cameras()
        budgets = np.full(64, 4, dtype=np.int64)
        frame = FrameTrace.from_budgets(cams[0], budgets)
        seq = SequenceTrace(
            frames=[frame, frame], replays=[None, 0], planned=[True, False]
        )
        direct = accelerator.simulate_scanout(frame)
        ex = accelerator.frame_execution(seq, 1)
        assert ex.steps_total == 1
        ex.step()
        report = ex.finish()
        assert report.total_cycles == direct.total_cycles
        assert report.bus_cycles == direct.bus_cycles
        assert report.energy_by_component == direct.energy_by_component


class TestGoldenResumability:
    """The pre-refactor cycle counts, pinned: stepping the golden sequence
    (suspending after every single wavefront) reproduces the per-frame
    cycles recorded in ``tests/golden/sequence_trace.json``."""

    def test_single_stepped_execution_matches_golden_cycles(self):
        from tests.test_sequence import _golden_accelerator

        golden = json.loads(GOLDEN_PATH.read_text())
        seq = SequenceTrace.from_dict(golden["sequence"])
        accelerator = _golden_accelerator()
        cache = TemporalVertexCache()
        cycles = []
        hits = 0
        for k in range(seq.num_frames):
            ex = accelerator.frame_execution(seq, k, temporal=cache)
            while not ex.done:
                ex.step()  # suspend point after every wavefront
            report = ex.finish()
            cycles.append(report.total_cycles)
            hits += report.encoding.temporal_hits
        assert cycles == golden["per_frame_cycles"], (
            "stepped FrameExecution drifted from the pinned pre-refactor "
            "cycle counts"
        )
        assert hits == golden["temporal_hits"]
