"""Tests for CIM-precision quantised inference."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.image import psnr
from repro.nerf.quantization import (
    QuantizedInstantNGP,
    fake_quantize,
    quantization_error_profile,
    quantize_symmetric,
)
from repro.nerf.renderer import BaselineRenderer


class TestQuantizeSymmetric:
    def test_roundtrip_small_error(self, rng):
        values = rng.normal(size=(32, 16))
        q, scale = quantize_symmetric(values, 8)
        assert np.max(np.abs(q * scale - values)) <= scale / 2 + 1e-12

    def test_range_respected(self, rng):
        values = rng.normal(size=100)
        q, _ = quantize_symmetric(values, 4)
        assert q.max() <= 7 and q.min() >= -8

    def test_zeros_safe(self):
        q, scale = quantize_symmetric(np.zeros(5), 8)
        assert scale == 1.0
        np.testing.assert_array_equal(q, np.zeros(5))

    def test_too_few_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            quantize_symmetric(np.ones(3), 1)

    def test_fake_quantize_more_bits_less_error(self, rng):
        values = rng.normal(size=1000)
        err4 = np.abs(fake_quantize(values, 4) - values).mean()
        err8 = np.abs(fake_quantize(values, 8) - values).mean()
        assert err8 < err4


class TestQuantizedModel:
    def test_interface_preserved(self, trained_model, rng):
        q = QuantizedInstantNGP(trained_model)
        pts = rng.random((10, 3))
        sigma, geo = q.query_density(pts)
        assert sigma.shape == (10,)
        dirs = rng.normal(size=(10, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        assert q.query_color(geo, dirs).shape == (10, 3)

    def test_original_model_untouched(self, trained_model, rng):
        pts = rng.random((20, 3))
        before, _ = trained_model.query_density(pts)
        QuantizedInstantNGP(trained_model, weight_bits=3, table_bits=3)
        after, _ = trained_model.query_density(pts)
        np.testing.assert_array_equal(before, after)

    def test_8bit_render_near_lossless(self, trained_model, lego_dataset):
        """8-bit crossbar weights preserve quality (NeuRex-style claim)."""
        camera = lego_dataset.cameras[0]
        full = BaselineRenderer(trained_model, num_samples=16).render_image(camera)
        q = QuantizedInstantNGP(trained_model, weight_bits=8, table_bits=8)
        quant = BaselineRenderer(q, num_samples=16).render_image(camera)
        assert psnr(quant.image, full.image) > 30.0

    def test_low_bits_degrade(self, trained_model, lego_dataset):
        camera = lego_dataset.cameras[0]
        full = BaselineRenderer(trained_model, num_samples=16).render_image(camera)
        q8 = QuantizedInstantNGP(trained_model, 8, 8)
        q3 = QuantizedInstantNGP(trained_model, 3, 3)
        p8 = psnr(
            BaselineRenderer(q8, num_samples=16).render_image(camera).image,
            full.image,
        )
        p3 = psnr(
            BaselineRenderer(q3, num_samples=16).render_image(camera).image,
            full.image,
        )
        assert p8 > p3

    def test_error_profile_trend(self, trained_model, rng):
        pts = rng.random((400, 3))
        profile = quantization_error_profile(trained_model, pts, [3, 5, 8])
        errors = [e for _, e in profile]
        assert errors[0] >= errors[-1]
        assert errors[-1] < 1.0
