"""Tests for repro.utils (math helpers and RNG derivation)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.math import (
    normalize_rows,
    relu,
    relu_grad,
    sigmoid,
    sigmoid_grad,
    softplus,
    trunc_exp,
)
from repro.utils.rng import derive_seed, seeded_rng


class TestRelu:
    def test_positive_passthrough(self):
        x = np.array([0.5, 2.0])
        assert np.array_equal(relu(x), x)

    def test_negative_clamped(self):
        assert np.array_equal(relu(np.array([-1.0, -0.1])), np.zeros(2))

    def test_grad_matches_definition(self):
        x = np.array([-2.0, -0.0, 0.5])
        assert np.array_equal(relu_grad(x), np.array([0.0, 0.0, 1.0]))


class TestSigmoid:
    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), np.ones_like(x))

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_grad_matches_numeric(self):
        x = np.array([0.3])
        y = sigmoid(x)
        eps = 1e-6
        numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        np.testing.assert_allclose(sigmoid_grad(y), numeric, rtol=1e-5)


class TestSoftplusTruncExp:
    def test_softplus_positive(self):
        assert np.all(softplus(np.linspace(-20, 20, 41)) > 0)

    def test_softplus_asymptote(self):
        assert softplus(np.array([30.0]))[0] == pytest.approx(30.0, rel=1e-6)

    def test_trunc_exp_clips(self):
        out = trunc_exp(np.array([100.0, -100.0]))
        assert out[0] == pytest.approx(np.exp(15.0))
        assert out[1] == pytest.approx(np.exp(-15.0))


class TestNormalizeRows:
    def test_unit_norm(self, rng):
        x = rng.normal(size=(10, 3))
        out = normalize_rows(x)
        np.testing.assert_allclose(np.linalg.norm(out, axis=-1), np.ones(10))

    def test_zero_vector_safe(self):
        out = normalize_rows(np.zeros((1, 3)))
        assert np.all(np.isfinite(out))

    @given(st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=3))
    def test_direction_preserved(self, vec):
        x = np.array([vec])
        if np.linalg.norm(x) < 1e-6:
            return
        out = normalize_rows(x)
        cos = (out @ x.T).item() / np.linalg.norm(x)
        assert cos == pytest.approx(1.0, abs=1e-6)


class TestRng:
    def test_seeded_rng_deterministic(self):
        a = seeded_rng(42).random(5)
        b = seeded_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_derive_seed_label_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_derive_seed_base_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_derive_seed_in_numpy_range(self):
        for base in range(10):
            assert 0 <= derive_seed(base, "module", 3) < 2**63
