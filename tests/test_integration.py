"""End-to-end integration tests exercising the full stack."""

import numpy as np
import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.baselines.gpu import GPUModel, RTX3070
from repro.baselines.neurex import NEUREX_SERVER, NeurexModel
from repro.baselines.platform import Workload
from repro.core.config import ASDRConfig
from repro.core.pipeline import ASDRRenderer
from repro.metrics.image import psnr, ssim
from repro.nerf.renderer import BaselineRenderer
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG


class TestFullStack:
    """The paper's end-to-end claims on the small test workload."""

    def test_quality_chain(self, trained_model, lego_dataset,
                           baseline_result, asdr_result):
        """GT -> baseline -> ASDR quality ordering holds."""
        reference = lego_dataset.reference_image(0, num_samples=128)
        base_psnr = psnr(baseline_result.image, reference)
        asdr_psnr = psnr(asdr_result.image, reference)
        assert base_psnr > 18.0
        # ASDR within 0.5 dB of the baseline (paper: 0.07 average).
        assert abs(base_psnr - asdr_psnr) < 0.5

    def test_ssim_preserved(self, lego_dataset, baseline_result, asdr_result):
        reference = lego_dataset.reference_image(0, num_samples=128)
        delta = abs(
            ssim(baseline_result.image, reference)
            - ssim(asdr_result.image, reference)
        )
        assert delta < 0.05

    def test_work_reduction_chain(self, baseline_result, asdr_result):
        """ASDR reduces density points AND color evaluations."""
        assert asdr_result.density_points < baseline_result.points_total
        assert asdr_result.color_points < asdr_result.density_points

    def test_platform_ordering(self, trained_model, lego_dataset,
                               baseline_result, asdr_result):
        """GPU > NeuRex > ASDR in latency (Figure 17's ordering)."""
        workload = Workload.from_render_result(baseline_result, trained_model)
        t_gpu = GPUModel(RTX3070).run(workload).time_seconds
        t_neurex = NeurexModel(NEUREX_SERVER).run(workload).time_seconds
        accelerator = ASDRAccelerator(
            ArchConfig.server(),
            TEST_GRID,
            TEST_MODEL_CONFIG.density_mlp_config,
            TEST_MODEL_CONFIG.color_mlp_config,
        )
        t_asdr = accelerator.simulate_render(
            lego_dataset.cameras[0], asdr_result, group_size=2
        ).time_seconds
        assert t_asdr < t_neurex < t_gpu

    def test_ablation_ordering(self, lego_dataset, baseline_result, asdr_result):
        """Figure 20: strawman < SW-only, HW-only < full ASDR."""
        camera = lego_dataset.cameras[0]

        def acc(cfg):
            return ASDRAccelerator(
                cfg, TEST_GRID,
                TEST_MODEL_CONFIG.density_mlp_config,
                TEST_MODEL_CONFIG.color_mlp_config,
            )

        t_strawman = acc(ArchConfig.strawman()).simulate_render(
            camera, baseline_result
        ).time_seconds
        t_sw = acc(ArchConfig.strawman()).simulate_render(
            camera, asdr_result, group_size=2
        ).time_seconds
        t_hw = acc(ArchConfig.server()).simulate_render(
            camera, baseline_result
        ).time_seconds
        t_full = acc(ArchConfig.server()).simulate_render(
            camera, asdr_result, group_size=2
        ).time_seconds
        assert t_sw < t_strawman
        assert t_hw < t_strawman
        assert t_full < t_sw
        assert t_full < t_hw

    def test_multiple_views_consistent(self, trained_model, lego_dataset):
        """Every orbit view renders with sane statistics."""
        renderer = ASDRRenderer(trained_model, num_samples=16)
        for view in range(2):
            result = renderer.render_image(lego_dataset.cameras[view])
            assert result.image.min() >= 0
            assert result.image.max() <= 1 + 1e-9
            assert result.density_points > 0

    def test_deterministic_end_to_end(self, trained_model, lego_dataset):
        camera = lego_dataset.cameras[0]
        a = ASDRRenderer(trained_model, num_samples=16).render_image(camera)
        b = ASDRRenderer(trained_model, num_samples=16).render_image(camera)
        np.testing.assert_array_equal(a.image, b.image)
        np.testing.assert_array_equal(a.plan.budgets, b.plan.budgets)

    def test_et_plus_as_compose(self, trained_model, lego_dataset):
        """Figure 23: combining ET with AS reduces work below either alone."""
        camera = lego_dataset.cameras[0]

        def points(config):
            return ASDRRenderer(
                trained_model, config=config, num_samples=24
            ).render_image(camera).density_points

        p_none = points(ASDRConfig(adaptive=None, approximation=None))
        p_et = points(ASDRConfig(adaptive=None, approximation=None,
                                 early_termination=0.99))
        p_as = points(ASDRConfig(approximation=None))
        p_both = points(ASDRConfig(approximation=None, early_termination=0.99))
        assert p_et < p_none
        assert p_as < p_none
        assert p_both <= min(p_et, p_as) * 1.05
