"""Tests for on-chip buffer and system-bus models."""

import pytest

from repro.arch.buffers import BufferModel, BufferSpec, default_buffers
from repro.arch.bus import BusSpec, BusTraffic, bus_cycles
from repro.errors import ConfigurationError


class TestBufferSpec:
    def test_capacity_entries(self):
        spec = BufferSpec("x", capacity_bytes=1024, entry_bytes=8)
        assert spec.capacity_entries == 128

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferSpec("x", capacity_bytes=4, entry_bytes=8)

    def test_default_budget_scales(self):
        server = default_buffers("server")
        edge = default_buffers("edge")
        for name in server:
            assert edge[name].capacity_bytes < server[name].capacity_bytes

    def test_default_names(self):
        assert set(default_buffers()) == {"address", "embed", "density_color"}


class TestBufferModel:
    def test_fitting_wavefront_no_stall(self):
        model = BufferModel(default_buffers("server"))
        assert model.observe("embed", 10) == 0
        assert model.reports["embed"].stall_cycles == 0

    def test_overflow_stalls(self):
        spec = {"embed": BufferSpec("embed", 1024, entry_bytes=32, refill_cycles=4)}
        model = BufferModel(spec)
        stall = model.observe("embed", 100)  # capacity 32 -> 4 passes
        assert stall == 3 * 4
        assert model.reports["embed"].overflow_wavefronts == 1

    def test_peak_tracked(self):
        model = BufferModel(default_buffers("server"))
        model.observe("address", 100)
        model.observe("address", 40)
        assert model.reports["address"].peak_entries == 100

    def test_wavefront_charges_all_buffers(self):
        model = BufferModel(default_buffers("server"))
        model.observe_wavefront(
            in_flight_points=64, levels=8, ray_working_points=64 * 48
        )
        for name in ("address", "embed", "density_color"):
            assert model.reports[name].peak_entries > 0

    def test_table2_capacity_fits_default_wavefronts(self):
        """The Table 2 buffer budget holds a 64-ray x 48-sample wavefront
        without stalling — the design point the paper sizes for."""
        model = BufferModel(default_buffers("server"))
        stall = model.observe_wavefront(
            in_flight_points=64, levels=8, ray_working_points=64 * 48
        )
        assert stall == 0

    def test_total_stalls_aggregates(self):
        spec = {"embed": BufferSpec("embed", 1024, entry_bytes=32)}
        model = BufferModel(spec)
        model.observe("embed", 1000)
        assert model.total_stalls() == model.reports["embed"].stall_cycles


class TestBus:
    def test_zero_bytes_zero_cycles(self):
        assert BusSpec().transfer_cycles(0) == 0

    def test_transfer_includes_overhead(self):
        spec = BusSpec(bytes_per_cycle=32, request_overhead_cycles=8,
                       burst_bytes=4096)
        assert spec.transfer_cycles(64) == 8 + 2

    def test_multiple_bursts(self):
        spec = BusSpec(bytes_per_cycle=32, request_overhead_cycles=8,
                       burst_bytes=128)
        cycles = spec.transfer_cycles(256)
        assert cycles == 2 * 8 + 8

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            BusSpec(bytes_per_cycle=0)

    def test_traffic_accounting(self):
        traffic = BusTraffic(pixels=100, probe_pixels=10)
        assert traffic.input_bytes == 110 * 8
        assert traffic.output_bytes == 100 * 6

    def test_bus_never_dominates(self):
        """The dataflow claim: bus traffic is negligible next to compute.

        A 56x56 image moves ~44 KB over the bus — thousands of cycles —
        while rendering takes hundreds of thousands.
        """
        cycles = bus_cycles(BusTraffic(pixels=56 * 56, probe_pixels=144))
        assert cycles < 10000


class TestAcceleratorIntegration:
    def test_sim_reports_buffer_and_bus(self, lego_dataset, baseline_result):
        from repro.arch.accelerator import ASDRAccelerator
        from repro.arch.config import ArchConfig
        from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG

        acc = ASDRAccelerator(
            ArchConfig.server(),
            TEST_GRID,
            TEST_MODEL_CONFIG.density_mlp_config,
            TEST_MODEL_CONFIG.color_mlp_config,
        )
        report = acc.simulate_render(lego_dataset.cameras[0], baseline_result)
        assert report.bus_cycles > 0
        assert report.buffer_stall_cycles == 0  # Table 2 sizing holds
        assert report.bus_cycles < report.total_cycles
