"""Tests for model checkpoint serialisation."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.nerf.io import (
    load_instant_ngp,
    load_tensorf,
    save_instant_ngp,
    save_tensorf,
)
from repro.nerf.model import InstantNGPModel
from repro.nerf.tensorf import TensoRFModel
from tests.conftest import TEST_MODEL_CONFIG, TEST_TENSORF_CONFIG


class TestInstantNGPCheckpoint:
    def test_roundtrip_preserves_outputs(self, tmp_path, rng):
        model = InstantNGPModel(TEST_MODEL_CONFIG, seed=3)
        path = tmp_path / "model.npz"
        save_instant_ngp(model, path)
        loaded = load_instant_ngp(path)
        pts = rng.random((20, 3))
        dirs = rng.normal(size=(20, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        s1, c1 = model.query(pts, dirs)
        s2, c2 = loaded.query(pts, dirs)
        np.testing.assert_allclose(s1, s2)
        np.testing.assert_allclose(c1, c2)

    def test_roundtrip_preserves_config(self, tmp_path):
        model = InstantNGPModel(TEST_MODEL_CONFIG, seed=3)
        path = tmp_path / "model.npz"
        save_instant_ngp(model, path)
        loaded = load_instant_ngp(path)
        assert loaded.config == TEST_MODEL_CONFIG

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ReproError):
            load_instant_ngp(path)


class TestTensoRFCheckpoint:
    def test_roundtrip_preserves_outputs(self, tmp_path, rng):
        model = TensoRFModel(TEST_TENSORF_CONFIG, seed=3)
        path = tmp_path / "tensorf.npz"
        save_tensorf(model, path)
        loaded = load_tensorf(path)
        pts = rng.random((15, 3))
        np.testing.assert_allclose(model.encode(pts), loaded.encode(pts))

    def test_roundtrip_preserves_config(self, tmp_path):
        model = TensoRFModel(TEST_TENSORF_CONFIG, seed=3)
        path = tmp_path / "tensorf.npz"
        save_tensorf(model, path)
        assert load_tensorf(path).config == TEST_TENSORF_CONFIG

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ReproError):
            load_tensorf(path)
