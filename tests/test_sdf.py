"""Tests for SDF primitives and CSG combinators."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.scenes import sdf as S

point = st.lists(st.floats(-2, 2), min_size=3, max_size=3).map(
    lambda v: np.array([v])
)


class TestSphere:
    def test_center_inside(self):
        assert S.Sphere(radius=1.0).distance(np.zeros((1, 3)))[0] == -1.0

    def test_surface_zero(self):
        d = S.Sphere(radius=1.0).distance(np.array([[1.0, 0, 0]]))
        assert d[0] == pytest.approx(0.0)

    def test_outside_positive(self):
        d = S.Sphere(radius=0.5).distance(np.array([[2.0, 0, 0]]))
        assert d[0] == pytest.approx(1.5)

    @given(point)
    def test_exact_distance(self, p):
        sphere = S.Sphere(center=(0.1, -0.2, 0.3), radius=0.7)
        expected = np.linalg.norm(p - np.array([0.1, -0.2, 0.3])) - 0.7
        assert sphere.distance(p)[0] == pytest.approx(expected, abs=1e-9)


class TestBox:
    def test_inside_negative(self):
        assert S.Box(half_size=(1, 1, 1)).distance(np.zeros((1, 3)))[0] < 0

    def test_face_distance(self):
        d = S.Box(half_size=(0.5, 0.5, 0.5)).distance(np.array([[1.5, 0, 0]]))
        assert d[0] == pytest.approx(1.0)

    def test_corner_distance(self):
        d = S.Box(half_size=(1, 1, 1)).distance(np.array([[2.0, 2.0, 2.0]]))
        assert d[0] == pytest.approx(np.sqrt(3.0))

    def test_rounded_box_shrinks_distance(self):
        p = np.array([[1.5, 0.0, 0.0]])
        plain = S.Box(half_size=(0.5, 0.5, 0.5)).distance(p)[0]
        rounded = S.RoundedBox(half_size=(0.5, 0.5, 0.5), rounding=0.1).distance(p)[0]
        assert rounded == pytest.approx(plain - 0.1)


class TestCylinderTorusPlane:
    def test_cylinder_axis_inside(self):
        c = S.Cylinder(radius=0.5, half_height=1.0)
        assert c.distance(np.zeros((1, 3)))[0] < 0

    def test_cylinder_radial_distance(self):
        c = S.Cylinder(radius=0.5, half_height=1.0)
        assert c.distance(np.array([[1.5, 0, 0]]))[0] == pytest.approx(1.0)

    def test_torus_ring_inside(self):
        t = S.Torus(major=1.0, minor=0.2)
        assert t.distance(np.array([[1.0, 0, 0]]))[0] == pytest.approx(-0.2)

    def test_plane_signed_sides(self):
        p = S.Plane(normal=(0, 1, 0), offset=0.0)
        assert p.distance(np.array([[0, 1.0, 0]]))[0] > 0
        assert p.distance(np.array([[0, -1.0, 0]]))[0] < 0


class TestCSG:
    @given(point)
    def test_union_is_min(self, p):
        a = S.Sphere(center=(0.5, 0, 0), radius=0.4)
        b = S.Box(center=(-0.5, 0, 0), half_size=(0.3, 0.3, 0.3))
        u = S.Union([a, b])
        assert u.distance(p)[0] == pytest.approx(
            min(a.distance(p)[0], b.distance(p)[0])
        )

    @given(point)
    def test_intersection_is_max(self, p):
        a = S.Sphere(radius=0.8)
        b = S.Box(half_size=(0.5, 0.5, 0.5))
        i = S.Intersection([a, b])
        assert i.distance(p)[0] == pytest.approx(
            max(a.distance(p)[0], b.distance(p)[0])
        )

    @given(point)
    def test_difference_definition(self, p):
        base = S.Sphere(radius=0.8)
        cut = S.Sphere(center=(0.4, 0, 0), radius=0.3)
        d = S.Difference(base, cut)
        assert d.distance(p)[0] == pytest.approx(
            max(base.distance(p)[0], -cut.distance(p)[0])
        )

    def test_operator_sugar(self):
        a, b = S.Sphere(radius=0.5), S.Box(half_size=(0.2, 0.2, 0.2))
        assert isinstance(a | b, S.Union)
        assert isinstance(a & b, S.Intersection)
        assert isinstance(a - b, S.Difference)


class TestTransforms:
    def test_translate_moves_surface(self):
        moved = S.Translate(S.Sphere(radius=0.5), offset=(1.0, 0, 0))
        assert moved.distance(np.array([[1.0, 0, 0]]))[0] == pytest.approx(-0.5)

    def test_scale_scales_distance(self):
        scaled = S.Scale(S.Sphere(radius=1.0), factor=2.0)
        assert scaled.distance(np.array([[4.0, 0, 0]]))[0] == pytest.approx(2.0)

    def test_repeat_tiles(self):
        rep = S.Repeat(S.Sphere(radius=0.2), period=1.0)
        d0 = rep.distance(np.array([[0.0, 0, 0]]))[0]
        d1 = rep.distance(np.array([[1.0, 0, 0]]))[0]
        assert d0 == pytest.approx(d1)


class TestNormals:
    def test_sphere_normals_radial(self):
        sphere = S.Sphere(radius=1.0)
        pts = np.array([[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]])
        normals = S.estimate_normals(sphere, pts)
        np.testing.assert_allclose(normals, pts, atol=1e-3)

    def test_normals_unit_length(self, rng):
        box = S.Box(half_size=(0.5, 0.4, 0.3))
        pts = rng.normal(size=(20, 3))
        normals = S.estimate_normals(box, pts)
        np.testing.assert_allclose(np.linalg.norm(normals, axis=-1), 1.0, atol=1e-6)
