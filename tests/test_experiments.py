"""Tests for the experiment harness and workbench (fast paths only)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments.harness import EXPERIMENTS, format_table, run_experiment
from repro.experiments.workbench import Workbench, WorkbenchConfig


@pytest.fixture(scope="module")
def wb(tmp_path_factory):
    cache = tmp_path_factory.mktemp("models")
    return Workbench(
        WorkbenchConfig(
            width=24,
            height=24,
            num_samples=16,
            train_steps=60,
            train_batch=512,
            cache_dir=str(cache),
        )
    )


class TestHarness:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig4", "fig5", "fig7", "fig8", "fig9", "fig13", "fig15",
            "fig16", "fig17a", "fig17b", "fig18a", "fig18b", "fig19a",
            "fig19b", "fig20", "fig21a", "fig21b", "fig22", "fig23",
            "fig24", "fig25", "fig26a", "fig26b", "fig27a", "fig27b",
            "table2", "table3", "table4",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            run_experiment("fig99", print_output=False)

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_cluster_experiment_rows(self, wb):
        """The registered fleet experiment: per-shard rows plus one fleet
        aggregate row for each compared router."""
        rows = run_experiment("cluster", wb, print_output=False)
        assert {r["router"] for r in rows} == {"affinity", "random"}
        for router in ("affinity", "random"):
            shard_col = [r["shard"] for r in rows if r["router"] == router]
            assert shard_col == ["shard0", "shard1", "(fleet)"]


class TestWorkbench:
    def test_dataset_memoised(self, wb):
        assert wb.dataset("mic") is wb.dataset("mic")

    def test_model_disk_cached(self, wb):
        model_a = wb.model("mic")
        wb._models.clear()
        model_b = wb.model("mic")
        pts = np.random.default_rng(0).random((10, 3))
        np.testing.assert_allclose(
            model_a.query_density(pts)[0], model_b.query_density(pts)[0]
        )

    def test_baseline_render_memoised(self, wb):
        assert wb.baseline_render("mic") is wb.baseline_render("mic")

    def test_asdr_render_keyed_by_config(self, wb):
        from repro.core.config import ASDRConfig

        a = wb.asdr_render("mic")
        b = wb.asdr_render("mic", asdr_config=ASDRConfig(approximation=None))
        assert a is not b

    def test_group_size_helper(self, wb):
        from repro.core.config import ASDRConfig

        assert wb.group_size() == 2
        assert wb.group_size(ASDRConfig(approximation=None)) == 1


class TestFastExperiments:
    def test_fig5_breakdown(self, wb):
        rows = run_experiment("fig5", wb, print_output=False)
        shares = {r["phase"]: r["pct_of_total"] for r in rows}
        assert shares["color"] > 50.0
        assert shares["embedding"] < 20.0
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_fig13_utilization(self, wb):
        rows = run_experiment("fig13", wb, print_output=False)
        avg = rows[-1]
        assert avg["level"] == "avg"
        assert avg["hybrid_pct"] > avg["original_pct"]

    def test_table2_totals(self, wb):
        rows = run_experiment("table2", wb, print_output=False)
        total = rows[-1]
        assert total["server_area_mm2"] == pytest.approx(15.09, rel=0.03)
        assert total["edge_power_mw"] == pytest.approx(1440, rel=0.03)

    def test_fig7_adaptive_savings(self, wb):
        rows = run_experiment("fig7", wb, print_output=False)
        fixed, adaptive = rows[0], rows[1]
        assert adaptive["avg_points_per_pixel"] < fixed["avg_points_per_pixel"]
        assert adaptive["psnr"] > fixed["psnr"] - 1.0

    def test_fig9_ordering(self, wb):
        rows = run_experiment("fig9", wb, print_output=False)
        original, naive, ours = rows
        # Our approximation must beat naive reduction at similar cost.
        assert ours["psnr"] >= naive["psnr"] - 0.2
        assert ours["flops_pct"] < 80.0

    def test_fig8_similarity(self, wb):
        rows = run_experiment("fig8", wb, print_output=False)
        for row in rows:
            assert row["frac_above_0.99"] > 0.5
