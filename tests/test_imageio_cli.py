"""Tests for image I/O and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.errors import ReproError
from repro.utils.imageio import read_ppm, write_pgm, write_ppm


class TestPPM:
    def test_roundtrip(self, tmp_path, rng):
        img = rng.random((7, 5, 3))
        path = tmp_path / "img.ppm"
        write_ppm(img, path)
        back = read_ppm(path)
        assert back.shape == (7, 5, 3)
        np.testing.assert_allclose(back, img, atol=1.0 / 255.0)

    def test_values_clipped(self, tmp_path):
        img = np.full((2, 2, 3), 2.0)
        path = tmp_path / "img.ppm"
        write_ppm(img, path)
        back = read_ppm(path)
        np.testing.assert_allclose(back, np.ones((2, 2, 3)))

    def test_wrong_shape_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_ppm(np.zeros((4, 4)), tmp_path / "x.ppm")

    def test_read_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "junk.ppm"
        path.write_bytes(b"NOTPPM")
        with pytest.raises(ReproError):
            read_ppm(path)

    def test_pgm_grayscale(self, tmp_path, rng):
        img = rng.random((6, 4))
        path = tmp_path / "img.pgm"
        write_pgm(img, path)
        assert path.read_bytes().startswith(b"P5\n4 6\n255\n")

    def test_pgm_wrong_shape_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_pgm(np.zeros((4, 4, 3)), tmp_path / "x.pgm")


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["scenes"])
        assert args.command == "scenes"

    def test_scenes_lists_all(self, capsys):
        assert main(["scenes"]) == 0
        out = capsys.readouterr().out
        assert "lego" in out and "palace" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_render_unknown_scene(self, capsys):
        assert main(["render", "nope", "--out", "/tmp/x.ppm"]) == 2

    def test_render_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["render", "lego"])
        assert args.out == "render.ppm"

    def test_report_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["report"])
        assert args.out == "EXPERIMENTS.md"
