"""Property-based bit-identity of the batched wavefront engine.

The batched plan path (:mod:`repro.exec.batch`) may only ever be a
*faster spelling* of the stepped engine: for any trace, any quantum
schedule and any batch boundaries, vectorized == stepwise == monolithic
bit-identically — cycles, energy, per-engine report fields and
temporal-cache state — including a client abandoning mid-batch.  These
tests drive all three spellings over hypothesis-generated workloads;
``tests/test_execution.py`` pins the same contract on the golden trace.

Self-skips when ``hypothesis`` is absent (CI installs it; a bare
numpy+pytest checkout still collects cleanly).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

import numpy as np  # noqa: E402
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.arch.accelerator import ASDRAccelerator  # noqa: E402
from repro.arch.config import ArchConfig  # noqa: E402
from repro.cim.cache import TemporalVertexCache  # noqa: E402
from repro.exec.execution import (  # noqa: E402
    scalar_engine,
    sequence_executions,
)
from repro.exec.frame_trace import FrameTrace  # noqa: E402
from repro.exec.sequence import SequenceTrace  # noqa: E402
from repro.scenes.cameras import camera_path  # noqa: E402
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG  # noqa: E402

_ACCELERATOR = None


def accelerator() -> ASDRAccelerator:
    global _ACCELERATOR
    if _ACCELERATOR is None:
        _ACCELERATOR = ASDRAccelerator(
            ArchConfig.server(),
            TEST_GRID,
            TEST_MODEL_CONFIG.density_mlp_config,
            TEST_MODEL_CONFIG.color_mlp_config,
        )
    return _ACCELERATOR


def _trace(size: int, mod: int, mult: int, frame: int = 0) -> FrameTrace:
    """A deterministic multi-step budget-map trace from small seeds (so
    hypothesis shrinks over three integers, not a budget array)."""
    cameras = camera_path("orbit", frame + 1, size, size, arc=0.35).cameras()
    budgets = 1 + (np.arange(size * size) % mod) * mult
    return FrameTrace.from_budgets(cameras[frame], budgets.astype(np.int64))


def _sequence(num_frames: int, size: int, mod: int, mult: int) -> SequenceTrace:
    return SequenceTrace(
        frames=[_trace(size, mod, mult, frame=k) for k in range(num_frames)],
        path_key=("prop", num_frames, size, mod, mult),
        kind="asdr",
        planned=[k == 0 for k in range(num_frames)],
    )


def _report_tuple(report):
    """Every observable of a SimReport, as an exact-comparison tuple."""
    return (
        report.total_cycles,
        report.bus_cycles,
        report.buffer_stall_cycles,
        report.encoding.cycles,
        report.encoding.read_cycles,
        report.encoding.lookups,
        report.encoding.cache_hits,
        report.encoding.temporal_hits,
        report.encoding.xbar_accesses,
        report.encoding.conflict_cycles,
        report.encoding.xbar_energy_pj,
        report.mlp.cycles,
        report.render.cycles,
        tuple(sorted(report.energy_by_component.items())),
    )


def _drive(ex, schedule):
    """Advance ``ex`` to completion with ``schedule`` as the repeating
    quantum pattern (0 entries fall back to single steps)."""
    i = 0
    while not ex.done:
        quantum = schedule[i % len(schedule)] if schedule else 1
        i += 1
        if quantum <= 0:
            ex.step()
        else:
            ex.run(max_steps=quantum)
    return ex.finish()


class TestFrameBitIdentity:
    @given(
        size=st.integers(8, 12),
        mod=st.integers(2, 7),
        mult=st.integers(1, 3),
        schedule=st.lists(st.integers(0, 5), min_size=1, max_size=4),
    )
    @settings(max_examples=12, deadline=None)
    def test_vectorized_equals_stepwise_equals_monolithic(
        self, size, mod, mult, schedule
    ):
        acc = accelerator()
        trace = _trace(size, mod, mult)
        with scalar_engine():
            mono = acc.simulate_trace(trace)
            ex = acc.trace_execution(trace)
            while not ex.done:
                ex.step()
            stepped = ex.finish()
        batched = _drive(acc.trace_execution(trace), schedule)
        assert _report_tuple(mono) == _report_tuple(stepped)
        assert _report_tuple(stepped) == _report_tuple(batched)

    @given(
        size=st.integers(8, 12),
        mod=st.integers(2, 7),
        mult=st.integers(1, 3),
        quantum=st.integers(1, 4),
        prefix=st.integers(0, 6),
    )
    @settings(max_examples=10, deadline=None)
    def test_abandon_mid_batch_matches_stepwise_prefix(
        self, size, mod, mult, quantum, prefix
    ):
        """Abandoning after a batched prefix charges exactly what the
        stepped engine charges for the same prefix of steps."""
        acc = accelerator()
        trace = _trace(size, mod, mult)
        ex_batched = acc.trace_execution(trace)
        while ex_batched.steps_done < prefix and not ex_batched.done:
            ex_batched.run(
                max_steps=min(quantum, prefix - ex_batched.steps_done)
            )
        with scalar_engine():
            ex_stepped = acc.trace_execution(trace)
            while ex_stepped.steps_done < ex_batched.steps_done:
                ex_stepped.step()
            a = ex_stepped.abandon()
        b = ex_batched.abandon()
        assert _report_tuple(a) == _report_tuple(b)

    @given(
        size=st.integers(8, 12),
        mod=st.integers(2, 6),
        mult=st.integers(1, 3),
        schedule=st.lists(st.integers(0, 4), min_size=1, max_size=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_mixed_step_and_batch_on_one_cursor(
        self, size, mod, mult, schedule
    ):
        """One execution may freely mix step() and run(max_steps) —
        the cursor keeps bit-identity across the mode switches."""
        acc = accelerator()
        trace = _trace(size, mod, mult)
        with scalar_engine():
            mono = acc.simulate_trace(trace)
        mixed = _drive(acc.trace_execution(trace), schedule)
        assert _report_tuple(mono) == _report_tuple(mixed)


class TestSequenceBitIdentity:
    @given(
        num_frames=st.integers(2, 3),
        size=st.integers(8, 10),
        mod=st.integers(2, 5),
        mult=st.integers(1, 3),
        schedule=st.lists(st.integers(0, 4), min_size=1, max_size=4),
        capacity=st.one_of(st.none(), st.integers(16, 512)),
    )
    @settings(max_examples=8, deadline=None)
    def test_temporal_cache_state_and_reports_match(
        self, num_frames, size, mod, mult, schedule, capacity
    ):
        """Across a sequence — temporal lookups, records and frame-boundary
        commits included — batched execution leaves the temporal cache in
        the same state as stepwise, frame by frame."""
        acc = accelerator()
        seq = _sequence(num_frames, size, mod, mult)

        with scalar_engine():
            cache_s = TemporalVertexCache(capacity)
            stepped = []
            for ex in sequence_executions(acc, seq, temporal=cache_s):
                while not ex.done:
                    ex.step()
                stepped.append(_report_tuple(ex.finish()))

        cache_b = TemporalVertexCache(capacity)
        batched = [
            _report_tuple(_drive(ex, schedule))
            for ex in sequence_executions(acc, seq, temporal=cache_b)
        ]

        assert stepped == batched
        assert cache_s.resident_token == cache_b.resident_token
        assert set(cache_s._resident) == set(cache_b._resident)
        for level, resident in cache_s._resident.items():
            assert np.array_equal(resident, cache_b._resident[level]), level


class TestServeBitIdentity:
    """End-to-end: the serving loop produces identical ServeReports with
    the batched engine on and off — preemption, twin clients and the
    cross-tenant plan prefetch included."""

    def test_serve_rows_identical_scalar_vs_batched(self):
        from repro.serving.policies import make_policy
        from repro.serving.request import ClientRequest
        from repro.serving.server import SequenceServer
        from tests.test_serving import synthetic_sequence

        acc = accelerator()
        paths = [
            camera_path("orbit", 3, 8, 8, arc=0.3),
            camera_path("orbit", 3, 8, 8, arc=0.5),
            camera_path("orbit", 3, 8, 8, arc=0.3),  # twin of the first
        ]

        def run_rows():
            server = SequenceServer(acc)
            for i, path in enumerate(paths):
                server.submit(
                    ClientRequest(
                        client_id=f"c{i}", scene="synthetic", path=path
                    ),
                    synthetic_sequence(path, varied=True),
                )
            return {
                name: server.serve(
                    make_policy(name, quantum=2 if "preemptive" in name else None)
                ).to_rows()
                for name in ("fifo", "round_robin_preemptive")
            }

        with scalar_engine():
            rows_scalar = run_rows()
        rows_batched = run_rows()
        assert rows_scalar == rows_batched
