"""Tests for the shared FrameTrace execution layer (repro.exec)."""

import numpy as np
import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.arch.trace import _neighbour_pairs, encoding_corner_stream
from repro.core.config import (
    ASDRConfig,
    AdaptiveSamplingConfig,
    ApproximationConfig,
)
from repro.core.pipeline import ASDRRenderer
from repro.errors import SimulationError
from repro.exec.frame_trace import PHASE_MAIN, PHASE_PROBE, FrameTrace, TraceWavefront
from repro.exec.scheduler import budget_groups, iter_budget_wavefronts
from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder
from repro.nerf.renderer import BaselineRenderer
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG

GRID = HashGridConfig(
    num_levels=4, table_size=2**11, base_resolution=4, max_resolution=32
)


@pytest.fixture(scope="module")
def server_acc():
    return ASDRAccelerator(
        ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


class TestScheduler:
    def test_groups_ascending_and_skip_nonpositive(self):
        budgets = np.array([4, 0, 8, 4, -1, 8, 8])
        groups = list(budget_groups(budgets))
        assert [b for b, _ in groups] == [4, 8]
        np.testing.assert_array_equal(groups[0][1], [0, 3])
        np.testing.assert_array_equal(groups[1][1], [2, 5, 6])

    def test_explicit_ray_ids(self):
        ids = np.array([10, 20, 30])
        budgets = np.array([2, 4, 2])
        groups = dict(budget_groups(budgets, ids))
        np.testing.assert_array_equal(groups[2], [10, 30])
        np.testing.assert_array_equal(groups[4], [20])

    def test_wavefront_chunking(self):
        budgets = np.full(10, 3)
        chunks = list(iter_budget_wavefronts(budgets, wavefront_rays=4))
        assert [len(c) for _, c in chunks] == [4, 4, 2]
        assert all(b == 3 for b, _ in chunks)


class TestTraceEmission:
    def test_asdr_result_carries_trace(self, asdr_result):
        trace = asdr_result.trace
        assert isinstance(trace, FrameTrace)
        assert trace.kind == "asdr"
        assert trace.group_size == 2  # default ApproximationConfig
        assert trace.num_pixels == asdr_result.num_rays

    def test_trace_totals_match_result(self, asdr_result):
        trace = asdr_result.trace
        assert trace.density_points == asdr_result.density_points
        assert trace.color_points == asdr_result.color_points
        assert trace.interpolated_points == asdr_result.interpolated_points
        assert trace.probe_points == asdr_result.probe_points

    def test_probe_wavefronts_precede_main(self, asdr_result):
        phases = [wf.phase for wf in asdr_result.trace.wavefronts]
        first_main = phases.index(PHASE_MAIN)
        assert all(p == PHASE_PROBE for p in phases[:first_main])
        assert all(p == PHASE_MAIN for p in phases[first_main:])

    def test_main_used_matches_sample_counts(self, asdr_result):
        for wf in asdr_result.trace.wavefronts:
            if wf.phase != PHASE_MAIN:
                continue
            np.testing.assert_array_equal(
                wf.used, asdr_result.sample_counts[wf.ray_ids]
            )

    def test_points_are_active_prefixes(self, asdr_result):
        for wf in asdr_result.trace.wavefronts:
            assert wf.points.shape == (int(wf.used.sum()), 3)
            assert len(wf.point_ray()) == wf.num_points

    def test_baseline_result_carries_trace(self, baseline_result):
        trace = baseline_result.trace
        assert trace.kind == "baseline"
        assert trace.density_points == baseline_result.points_total
        assert trace.is_uniform


class TestSimulatorConsistency:
    """Acceptance: what the renderer counted is exactly what the
    simulator charges when both consume the same FrameTrace."""

    def _assert_consistent(self, acc, result, group_size):
        report = acc.simulate_render(None, result, group_size=group_size)
        assert report.mlp.density_points == result.density_points
        assert report.mlp.color_points == result.color_points
        assert report.render.composited_points == result.density_points
        assert report.render.interpolated_points == result.interpolated_points
        return report

    def test_instant_ngp_counts(self, server_acc, trained_model, lego_dataset):
        result = ASDRRenderer(trained_model, num_samples=24).render_image(
            lego_dataset.cameras[0]
        )
        self._assert_consistent(server_acc, result, group_size=2)

    def test_tensorf_counts(self, server_acc, trained_tensorf, lego_dataset):
        result = ASDRRenderer(trained_tensorf, num_samples=24).render_image(
            lego_dataset.cameras[0]
        )
        self._assert_consistent(server_acc, result, group_size=2)

    def test_early_termination_counts_and_cycles(
        self, server_acc, trained_model, lego_dataset
    ):
        camera = lego_dataset.cameras[0]

        def render(et):
            config = ASDRConfig(adaptive=None, approximation=None,
                                early_termination=et)
            return ASDRRenderer(
                trained_model, config=config, num_samples=24
            ).render_image(camera)

        with_et, without = render(0.99), render(None)
        r_et = self._assert_consistent(server_acc, with_et, group_size=1)
        r_no = self._assert_consistent(server_acc, without, group_size=1)
        # Early termination is reflected in simulated work and cycles.
        assert r_et.mlp.density_points < r_no.mlp.density_points
        assert r_et.total_cycles < r_no.total_cycles

    def test_no_camera_needed_on_trace_path(self, server_acc, asdr_result):
        """No re-sampling of rays inside the simulator: camera unused."""
        report = server_acc.simulate_render(None, asdr_result, group_size=2)
        assert report.total_cycles > 0

    def test_accepts_frame_trace_directly(self, server_acc, asdr_result):
        direct = server_acc.simulate_render(None, asdr_result.trace, group_size=2)
        via_result = server_acc.simulate_render(None, asdr_result, group_size=2)
        assert direct.total_cycles == via_result.total_cycles

    def test_trace_less_result_rejected(self, server_acc, lego_dataset, asdr_result):
        """The legacy (camera, budgets) re-derivation path is retired: a
        result without a trace raises a clear error instead of silently
        re-sampling rays inside the simulator."""
        from dataclasses import replace

        with pytest.raises(SimulationError, match="FrameTrace-carrying"):
            server_acc.simulate_render(
                lego_dataset.cameras[0], replace(asdr_result, trace=None)
            )

    def test_budget_map_path_matches_trace_totals(
        self, server_acc, lego_dataset, baseline_result
    ):
        """simulate_pass (the explicit budget-map constructor) prices the
        same point totals as replaying the render's own trace."""
        traced = server_acc.simulate_render(None, baseline_result)
        from_budgets = server_acc.simulate_pass(
            lego_dataset.cameras[0], baseline_result.sample_counts
        )
        assert from_budgets.mlp.density_points == traced.mlp.density_points

    def test_group_size_repricing_without_resampling(self, server_acc, asdr_result):
        g1 = server_acc.simulate_render(None, asdr_result, group_size=1)
        g4 = server_acc.simulate_render(None, asdr_result, group_size=4)
        assert g4.mlp.color_points < g1.mlp.color_points
        assert g4.mlp.density_points == g1.mlp.density_points

    def test_rejects_non_trace(self, server_acc):
        with pytest.raises(SimulationError):
            server_acc.simulate_trace("not a trace")


class TestFromBudgets:
    def test_covers_budget_map(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        budgets = np.full(24 * 24, 8, dtype=np.int64)
        budgets[: 24 * 12] = 4
        trace = FrameTrace.from_budgets(camera, budgets)
        assert trace.kind == "budgets"
        assert {wf.budget for wf in trace.wavefronts} == {4, 8}
        covered = np.concatenate([wf.ray_ids for wf in trace.wavefronts])
        np.testing.assert_array_equal(np.sort(covered), np.arange(24 * 24))

    def test_corner_stream_accepts_trace(self, lego_dataset, baseline_result):
        camera = lego_dataset.cameras[0]
        budgets = np.full(24 * 24, baseline_result.trace.full_budget,
                          dtype=np.int64)
        from_camera = list(encoding_corner_stream(camera, budgets, GRID, 64))
        from_trace = list(
            encoding_corner_stream(None, None, GRID, 64,
                                   trace=baseline_result.trace)
        )
        assert sum(b.num_points for b in from_camera) == sum(
            b.num_points for b in from_trace
        )
        assert set(from_trace[0].corners) == set(range(GRID.num_levels))
        assert from_trace[0].corners[0].shape == (from_trace[0].num_points, 8, 3)

    def test_corners_match_encoder(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        budgets = np.full(24 * 24, 6, dtype=np.int64)
        trace = FrameTrace.from_budgets(camera, budgets)
        encoder = HashGridEncoder(GRID)
        sl = next(trace.split(64))
        for level in range(GRID.num_levels):
            res = int(GRID.level_resolutions[level])
            expected, _ = encoder.voxel_vertices(sl.sample_points(), level)
            np.testing.assert_array_equal(sl.corners(res), expected)


class TestProfilerHelpers:
    def test_neighbour_pairs_guard(self):
        # Last pixel of the image hits: must not pair with itself or
        # index out of range (the seed's clamp bug).
        width = 4
        hit = np.array([True, True, False, True,
                        False, True, True, True])
        pairs = _neighbour_pairs(hit, width)
        assert (7, 8) not in pairs and (7, 7) not in pairs
        assert pairs == [(0, 1), (5, 6), (6, 7)]
        for left, right in pairs:
            assert right == left + 1 < len(hit)
            assert (left + 1) % width != 0

    def test_gather_points_matches_sampling(self, lego_dataset, baseline_result):
        from repro.arch.trace import _points_for_rays

        trace = baseline_result.trace
        hit = trace.hit_mask()
        ids = np.nonzero(hit)[0][:2]
        pts, h = trace.gather_points(ids)
        expected, eh = _points_for_rays(
            lego_dataset.cameras[0], ids, trace.full_budget
        )
        np.testing.assert_allclose(pts, expected)
        np.testing.assert_array_equal(h, eh)

    def test_profiled_figures_match_recompute(self, lego_dataset, baseline_result):
        from repro.arch.trace import hash_address_trace, repetition_profile

        camera = lego_dataset.cameras[0]
        n = baseline_result.trace.full_budget
        fresh = hash_address_trace(camera, GRID, n, num_points=200)
        replayed = hash_address_trace(camera, GRID, n, num_points=200,
                                      trace=baseline_result.trace)
        np.testing.assert_array_equal(fresh, replayed)
        inter_a, intra_a = repetition_profile(camera, GRID, n, max_ray_pairs=16)
        inter_b, intra_b = repetition_profile(
            camera, GRID, n, max_ray_pairs=16, trace=baseline_result.trace
        )
        assert inter_a == inter_b
        assert intra_a == intra_b


class TestCacheKey:
    def test_equal_configs_equal_keys(self):
        assert ASDRConfig().cache_key() == ASDRConfig().cache_key()

    def test_sequence_type_insensitive(self):
        a = ASDRConfig(adaptive=AdaptiveSamplingConfig(
            candidate_fractions=[1 / 4, 1 / 2]))
        b = ASDRConfig(adaptive=AdaptiveSamplingConfig(
            candidate_fractions=(1 / 4, 1 / 2)))
        assert repr(a) != repr(b) or True  # repr may differ; key must not
        assert a.cache_key() == b.cache_key()

    def test_differing_configs_differ(self):
        base = ASDRConfig()
        assert base.cache_key() != ASDRConfig(adaptive=None).cache_key()
        assert base.cache_key() != ASDRConfig(
            approximation=ApproximationConfig(4)).cache_key()
        assert base.cache_key() != ASDRConfig(
            early_termination=0.99).cache_key()

    def test_key_is_hashable(self):
        assert len({ASDRConfig().cache_key(), ASDRConfig().cache_key()}) == 1


class TestWorkbenchMemoisation:
    def test_frame_trace_shared_with_render(self, monkeypatch, tmp_path):
        from repro.experiments.workbench import Workbench, WorkbenchConfig

        wb = Workbench(WorkbenchConfig(width=16, height=16, num_samples=8,
                                       train_steps=30, train_batch=256,
                                       cache_dir=str(tmp_path)))
        r1 = wb.asdr_render("lego")
        # An equal-but-distinct config object must hit the memo.
        r2 = wb.asdr_render("lego", asdr_config=ASDRConfig())
        assert r1 is r2
        assert wb.frame_trace("lego") is r1.trace


class TestCLIList:
    def test_experiment_list(self, capsys):
        from repro.cli import main

        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig4", "fig17a", "fig25", "table2"):
            assert exp_id in out

    def test_experiment_requires_ids_without_list(self, capsys):
        from repro.cli import main

        assert main(["experiment"]) == 2
        assert "--list" in capsys.readouterr().err
