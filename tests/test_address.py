"""Tests for hybrid address generation (bit reorder, replication, hash)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cim.address import (
    HybridAddressGenerator,
    LevelMapping,
    bit_reorder_address,
    dense_slot_size,
    naive_concat_address,
)
from repro.errors import ConfigurationError
from repro.nerf.hashgrid import CORNER_OFFSETS, HashGridConfig


def _voxel_corners(base):
    return np.asarray(base)[None, None, :] + CORNER_OFFSETS[None, :, :]


GRID = HashGridConfig(
    num_levels=6, table_size=2**11, base_resolution=4, max_resolution=64
)


class TestBitReorder:
    def test_voxel_vertices_distinct_parity_prefix(self):
        """The 8 vertices of any voxel receive 8 distinct addresses whose
        high (parity) fields differ — the Figure 14b guarantee."""
        res = 16
        corners = _voxel_corners([6, 10, 3])
        addrs = bit_reorder_address(corners, res)[0]
        slots = addrs // (res // 2 + 1) ** 3
        assert len(set(slots.tolist())) == 8

    @given(st.integers(0, 14), st.integers(0, 14), st.integers(0, 14))
    @settings(max_examples=30)
    def test_any_voxel_conflict_free(self, x, y, z):
        res = 16
        addrs = bit_reorder_address(_voxel_corners([x, y, z]), res)[0]
        xbars = addrs // 64
        # Distinct addresses guaranteed; crossbar spread requires the slot
        # size to exceed the crossbar rows, which holds for res 16.
        assert len(set(addrs.tolist())) == 8

    def test_bijective_over_grid(self):
        res = 8
        coords = np.stack(
            np.meshgrid(*[np.arange(res + 1)] * 3, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        addrs = bit_reorder_address(coords, res)
        assert len(np.unique(addrs)) == (res + 1) ** 3

    def test_addresses_within_slot(self):
        res = 8
        coords = np.stack(
            np.meshgrid(*[np.arange(res + 1)] * 3, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        addrs = bit_reorder_address(coords, res)
        assert addrs.max() < dense_slot_size(res)

    def test_copy_offset(self):
        res = 8
        corners = _voxel_corners([1, 2, 3])
        base = bit_reorder_address(corners, res)
        shifted = bit_reorder_address(corners, res, copy_ids=np.array([[2]])[..., 0])
        np.testing.assert_array_equal(shifted - base, 2 * dense_slot_size(res))


class TestNaiveConcat:
    def test_shared_high_bits_conflict(self):
        """Figure 14a: naive concatenation piles voxel vertices onto few
        crossbars."""
        res = 16
        addrs = naive_concat_address(_voxel_corners([6, 10, 3]), res)[0]
        xbars = set((addrs // 64).tolist())
        assert len(xbars) < 8  # conflicts guaranteed

    def test_distinct_addresses(self):
        res = 16
        addrs = naive_concat_address(_voxel_corners([6, 10, 3]), res)[0]
        assert len(set(addrs.tolist())) == 8


class TestHybridGenerator:
    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            HybridAddressGenerator(GRID, mode="bogus")

    def test_level_classification(self):
        gen = HybridAddressGenerator(GRID, mode="hybrid")
        dense_flags = [m.dense for m in gen.levels]
        # Dense (low-res) levels first, hashed (high-res) later.
        assert dense_flags[0] is True
        assert dense_flags[-1] is False

    def test_hash_mode_never_dense(self):
        gen = HybridAddressGenerator(GRID, mode="hash")
        assert all(not m.dense for m in gen.levels)

    def test_copies_only_in_hybrid(self):
        hybrid = HybridAddressGenerator(GRID, mode="hybrid")
        naive = HybridAddressGenerator(GRID, mode="naive")
        assert any(m.copies > 1 for m in hybrid.levels)
        assert all(m.copies == 1 for m in naive.levels)

    def test_addresses_shape(self, rng):
        gen = HybridAddressGenerator(GRID, mode="hybrid")
        corners = rng.integers(0, 4, size=(10, 8, 3))
        addrs = gen.addresses(corners, 0, request_ids=np.arange(10))
        assert addrs.shape == (10, 8)

    def test_request_striping_spreads_copies(self):
        """Consecutive requests for the same entry go to different copies."""
        gen = HybridAddressGenerator(GRID, mode="hybrid")
        mapping = gen.levels[0]
        assert mapping.copies > 1
        corners = np.tile(_voxel_corners([1, 1, 1]), (2, 1, 1))
        addrs = gen.addresses(corners, 0, request_ids=np.array([0, 1]))
        assert not np.array_equal(addrs[0], addrs[1])

    def test_no_request_ids_no_striping(self):
        gen = HybridAddressGenerator(GRID, mode="hybrid")
        corners = np.tile(_voxel_corners([1, 1, 1]), (2, 1, 1))
        addrs = gen.addresses(corners, 0, request_ids=None)
        np.testing.assert_array_equal(addrs[0], addrs[1])

    def test_hashed_level_matches_eq2(self, rng):
        from repro.nerf.hashgrid import hash_coords

        gen = HybridAddressGenerator(GRID, mode="hybrid")
        level = GRID.num_levels - 1
        corners = rng.integers(0, 60, size=(5, 8, 3))
        np.testing.assert_array_equal(
            gen.addresses(corners, level),
            hash_coords(corners, GRID.table_size),
        )

    def test_storage_entries_cover_copies(self):
        gen = HybridAddressGenerator(GRID, mode="hybrid")
        for level, mapping in enumerate(gen.levels):
            assert gen.level_storage_entries(level) >= mapping.address_space


class TestLevelMapping:
    def test_address_space_dense(self):
        m = LevelMapping(level=0, resolution=8, table_size=2**11,
                         dense=True, copies=2)
        assert m.address_space == 2 * dense_slot_size(8)

    def test_address_space_hashed(self):
        m = LevelMapping(level=5, resolution=64, table_size=2**11,
                         dense=False, copies=1)
        assert m.address_space == 2**11
