"""Shared fixtures: tiny configurations and session-scoped trained models.

Everything here is sized for speed: 6-level grids with 2^11-entry tables,
16x16 to 24x24 images, and short distillation runs.  The session-scoped
model fixtures are trained once and reused by every test that needs a
plausible radiance field.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ASDRConfig
from repro.core.pipeline import ASDRRenderer
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.model import InstantNGPConfig, InstantNGPModel
from repro.nerf.renderer import BaselineRenderer
from repro.nerf.tensorf import TensoRFConfig, TensoRFModel
from repro.nerf.training import TrainingConfig, distill_scene
from repro.scenes.dataset import SceneDataset, load_dataset


TEST_GRID = HashGridConfig(
    num_levels=6, table_size=2**11, base_resolution=4, max_resolution=64
)

TEST_MODEL_CONFIG = InstantNGPConfig(
    grid=TEST_GRID,
    geo_feature_dim=15,
    density_hidden_dim=32,
    density_num_hidden=1,
    color_hidden_dim=32,
    color_num_hidden=2,
)

TEST_TENSORF_CONFIG = TensoRFConfig(
    resolution=32,
    num_components=4,
    density_hidden_dim=32,
    color_hidden_dim=32,
    color_num_hidden=2,
)

TEST_TRAINING = TrainingConfig(steps=120, batch_size=512, seed=3)


def pytest_addoption(parser):
    parser.addoption(
        "--slow",
        action="store_true",
        default=False,
        help=(
            "run the expensive randomized profiles (e.g. 200+ hypothesis "
            "examples in tests/test_serving_properties.py instead of the "
            "bounded CI budget)"
        ),
    )


def pytest_configure(config):
    # Register hypothesis profiles when the library is available; the
    # property harness skips itself otherwise.  ``deadline=None``: a
    # single serving example can legitimately take seconds.
    try:
        from hypothesis import settings
    except ImportError:
        return
    settings.register_profile("repro-ci", max_examples=25, deadline=None)
    settings.register_profile("repro-slow", max_examples=200, deadline=None)
    settings.load_profile(
        "repro-slow" if config.getoption("--slow") else "repro-ci"
    )


@pytest.fixture(scope="session")
def lego_dataset() -> SceneDataset:
    return load_dataset("lego", width=24, height=24)


@pytest.fixture(scope="session")
def mic_dataset() -> SceneDataset:
    return load_dataset("mic", width=24, height=24)


@pytest.fixture(scope="session")
def trained_model(lego_dataset) -> InstantNGPModel:
    """A small Instant-NGP model distilled on the lego scene."""
    model = InstantNGPModel(TEST_MODEL_CONFIG, seed=11)
    distill_scene(model, lego_dataset.scene, TEST_TRAINING)
    return model


@pytest.fixture(scope="session")
def trained_tensorf(lego_dataset) -> TensoRFModel:
    """A small TensoRF model distilled on the lego scene."""
    model = TensoRFModel(TEST_TENSORF_CONFIG, seed=11)
    distill_scene(model, lego_dataset.scene, TEST_TRAINING)
    return model


@pytest.fixture(scope="session")
def baseline_result(trained_model, lego_dataset):
    renderer = BaselineRenderer(trained_model, num_samples=24)
    return renderer.render_image(lego_dataset.cameras[0])


@pytest.fixture(scope="session")
def asdr_result(trained_model, lego_dataset):
    renderer = ASDRRenderer(trained_model, num_samples=24)
    return renderer.render_image(lego_dataset.cameras[0])


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
