"""Randomized serving properties: the harness that pins the SLO PR.

Hypothesis draws whole serving scenarios — client counts, camera paths
(including deliberate twins), SLO classes, arrival/departure windows,
deadline cadences, policies, fixed and auto-tuned quanta, shard counts
and overload-control configs — and asserts the invariants that every
hand-written scenario in :mod:`tests.test_serving` relies on:

* **conservation** — interleaved busy cycles equal the sum of per-client
  service cycles, and every submitted frame is accounted for as
  delivered, aborted (departure) or shed (overload);
* **scalar vs batched bit-identity** — the batched wavefront engine is
  an optimisation, never a semantic: reports match the scalar engine
  byte for byte;
* **recorder bit-identity** — telemetry is observer-only: serving with a
  recorder attached yields the identical report;
* **deterministic replay** — the same submissions served twice yield the
  identical report, single-box and fleet-wide.

Example budgets come from the hypothesis profiles registered in
``tests/conftest.py``: the default ``repro-ci`` profile runs a bounded
25 examples per property; ``pytest --slow`` switches to ``repro-slow``
(200 examples), the budget the acceptance criteria ask for locally.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.exec.execution import scalar_engine
from repro.obs.recorder import MemoryRecorder
from repro.scenes.cameras import camera_path
from repro.serving.cluster import ClusterServer
from repro.serving.policies import (
    ALL_POLICY_NAMES,
    PREEMPTIVE_POLICY_NAMES,
    make_policy,
)
from repro.serving.request import ClientRequest
from repro.serving.server import SequenceServer
from repro.serving.slo import AUTO_QUANTUM, SLO_CLASSES, SLOConfig
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG
from tests.test_serving import FRAMES, SIZE, synthetic_sequence


def _accelerator() -> ASDRAccelerator:
    return ASDRAccelerator(
        ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


#: Module-level (not fixtures): hypothesis reuses them across examples
#: without tripping the function-scoped-fixture health check.  The
#: accelerator is stateless across serves — every serving test in
#: :mod:`tests.test_serving` already shares one the same way.
ACCELERATOR = _accelerator()
SHARD_ACCELERATORS = [_accelerator(), _accelerator()]


# ----------------------------------------------------------------------
# Scenario strategy
# ----------------------------------------------------------------------
@st.composite
def serving_scenarios(draw):
    """One complete serving scenario, drawn feature by feature."""
    n_clients = draw(st.integers(min_value=1, max_value=4))
    clients = []
    for i in range(n_clients):
        # path_arc index 0 with twin=True reuses client 0's path — the
        # twin-deferral / shared-content machinery only fires on twins.
        twin = i > 0 and draw(st.booleans())
        arrival = draw(st.sampled_from([0, 0, 200, 1500]))
        clients.append(
            {
                "name": f"p{i}",
                "arc": 0.3 if twin else 0.3 + 0.1 * i,
                "slo_class": draw(st.sampled_from(SLO_CLASSES)),
                "arrival": arrival,
                "departure": draw(
                    st.sampled_from([None, None, arrival + 900])
                ),
                "interval": draw(
                    st.sampled_from([None, None, 60, 800, 4000])
                ),
            }
        )
    policy = draw(st.sampled_from(ALL_POLICY_NAMES))
    quantum = (
        draw(st.sampled_from([1, 2, 3, AUTO_QUANTUM]))
        if policy in PREEMPTIVE_POLICY_NAMES
        else None
    )
    slo = draw(
        st.sampled_from(
            [
                None,
                {"shed": True, "degrade": False},
                {"shed": False, "degrade": True},
                {"shed": True, "degrade": True},
            ]
        )
    )
    return {
        "clients": clients,
        "policy": policy,
        "quantum": quantum,
        "slo": slo,
        "varied": draw(st.booleans()),
        "shards": draw(st.sampled_from([1, 1, 2])),
    }


def _slo_config(spec):
    if spec["slo"] is None:
        return None
    return SLOConfig(
        shed=spec["slo"]["shed"],
        degrade=spec["slo"]["degrade"],
        degrade_fraction=0.5,
    )


def _policy(spec):
    if spec["quantum"] is None:
        return make_policy(spec["policy"])
    return make_policy(spec["policy"], quantum=spec["quantum"])


def _serve(spec, recorder=None):
    """Build the drawn scenario from scratch and serve it once."""
    if spec["shards"] == 1:
        server = SequenceServer(
            ACCELERATOR, slo=_slo_config(spec), recorder=recorder
        )
    else:
        server = ClusterServer(
            SHARD_ACCELERATORS, slo=_slo_config(spec), recorder=recorder
        )
    for c in spec["clients"]:
        path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=c["arc"])
        request = ClientRequest(
            client_id=c["name"],
            scene="synthetic",
            path=path,
            slo_class=c["slo_class"],
            arrival_cycle=c["arrival"],
            departure_cycle=c["departure"],
            frame_interval_cycles=c["interval"],
        )
        server.submit(
            request, synthetic_sequence(path, varied=spec["varied"])
        )
    return server.serve(_policy(spec))


def _single_box_reports(report, spec):
    """The per-shard ServeReports of either server flavour."""
    return report.shards if spec["shards"] > 1 else [report]


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
@given(spec=serving_scenarios())
def test_conservation_and_frame_accounting(spec):
    report = _serve(spec)
    for shard in _single_box_reports(report, spec):
        assert shard.busy_cycles == sum(
            c.service_cycles for c in shard.clients
        )
        for client in shard.clients:
            assert (
                client.frames + client.aborted_frames + client.shed_frames
                == FRAMES
            )
            assert client.service_cycles >= 0


@given(spec=serving_scenarios())
def test_batched_engine_is_bit_identical_to_scalar(spec):
    batched = _serve(spec).to_dict()
    with scalar_engine():
        scalar = _serve(spec).to_dict()
    assert batched == scalar


@given(spec=serving_scenarios())
def test_recorder_is_observer_only(spec):
    recorder = MemoryRecorder()
    observed = _serve(spec, recorder=recorder).to_dict()
    silent = _serve(spec).to_dict()
    assert observed == silent


@given(spec=serving_scenarios())
def test_replay_is_deterministic(spec):
    assert _serve(spec).to_dict() == _serve(spec).to_dict()
