"""Tests for color/density decoupled approximation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.approximation import (
    anchor_indices,
    color_mlp_savings,
    interpolate_group_colors,
)


class TestAnchors:
    def test_group_two(self):
        np.testing.assert_array_equal(anchor_indices(8, 2), [0, 2, 4, 6])

    def test_group_larger_than_points(self):
        np.testing.assert_array_equal(anchor_indices(3, 8), [0])

    def test_group_one_is_identity(self):
        np.testing.assert_array_equal(anchor_indices(5, 1), np.arange(5))

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            anchor_indices(8, 0)

    @given(st.integers(1, 64), st.integers(1, 8))
    @settings(max_examples=40)
    def test_anchor_count_formula(self, n, g):
        anchors = anchor_indices(n, g)
        assert len(anchors) == -(-n // g)  # ceil(n/g)
        assert anchors[0] == 0


class TestInterpolation:
    def _uniform_t(self, num_rays, n):
        return np.tile(np.linspace(0.1, 1.0, n), (num_rays, 1))

    def test_anchor_positions_exact(self, rng):
        n, g = 12, 3
        anchors = anchor_indices(n, g)
        anchor_colors = rng.random((4, len(anchors), 3))
        t_vals = self._uniform_t(4, n)
        out = interpolate_group_colors(anchor_colors, anchors, t_vals)
        np.testing.assert_allclose(out[:, anchors, :], anchor_colors)

    def test_midpoint_is_average(self, rng):
        anchors = np.array([0, 2])
        anchor_colors = rng.random((2, 2, 3))
        t_vals = self._uniform_t(2, 4)
        out = interpolate_group_colors(anchor_colors, anchors, t_vals)
        expected = (anchor_colors[:, 0] + anchor_colors[:, 1]) / 2
        np.testing.assert_allclose(out[:, 1, :], expected)

    def test_tail_constant_extrapolation(self, rng):
        anchors = np.array([0, 4])
        anchor_colors = rng.random((1, 2, 3))
        t_vals = self._uniform_t(1, 8)
        out = interpolate_group_colors(anchor_colors, anchors, t_vals)
        for j in range(5, 8):
            np.testing.assert_allclose(out[:, j, :], anchor_colors[:, 1, :])

    def test_output_within_anchor_hull(self, rng):
        """Linear interpolation cannot overshoot the anchor colors."""
        n, g = 16, 4
        anchors = anchor_indices(n, g)
        anchor_colors = rng.random((8, len(anchors), 3))
        t_vals = self._uniform_t(8, n)
        out = interpolate_group_colors(anchor_colors, anchors, t_vals)
        assert out.min() >= anchor_colors.min() - 1e-12
        assert out.max() <= anchor_colors.max() + 1e-12

    def test_smooth_field_reconstructed(self):
        """A linear color ramp is reconstructed exactly (color locality)."""
        n, g = 16, 2
        t = np.linspace(0.0, 1.0, n)[None, :]
        true_colors = np.stack([t, 0.5 * t, 1 - t], axis=-1)
        anchors = anchor_indices(n, g)
        out = interpolate_group_colors(true_colors[:, anchors, :], anchors, t)
        np.testing.assert_allclose(out[:, : anchors[-1] + 1], true_colors[:, : anchors[-1] + 1], atol=1e-12)

    def test_nonuniform_t_uses_distances(self):
        """Weights follow actual distances, not index positions."""
        anchors = np.array([0, 2])
        anchor_colors = np.array([[[0.0, 0, 0], [1.0, 1, 1]]])
        t_vals = np.array([[0.0, 0.9, 1.0]])  # middle point close to anchor 1
        out = interpolate_group_colors(anchor_colors, anchors, t_vals)
        assert out[0, 1, 0] == pytest.approx(0.9)


class TestSavings:
    def test_group_two_halves(self):
        assert color_mlp_savings(64, 2) == pytest.approx(0.5)

    def test_group_one_saves_nothing(self):
        assert color_mlp_savings(64, 1) == 0.0

    def test_zero_points(self):
        assert color_mlp_savings(0, 4) == 0.0

    def test_paper_46_percent(self):
        """Figure 9: n=2 yields a ~46% compute reduction (ceil effects)."""
        saving = color_mlp_savings(192, 2)
        assert 0.45 <= saving <= 0.5
