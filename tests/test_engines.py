"""Tests for the three engine models (encoding / MLP / rendering)."""

import numpy as np
import pytest

from repro.arch.config import ArchConfig
from repro.arch.encoding_engine import EncodingEngine
from repro.arch.mlp_engine import MLPEngine
from repro.arch.render_engine import RenderEngine
from repro.arch.trace import EncodingBatch
from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder
from repro.nerf.mlp import MLPConfig

GRID = HashGridConfig(
    num_levels=4, table_size=2**11, base_resolution=4, max_resolution=32
)
DENSITY = MLPConfig(input_dim=8, hidden_dim=32, num_hidden=1, output_dim=16)
COLOR = MLPConfig(input_dim=31, hidden_dim=64, num_hidden=3, output_dim=3)


def _batch(rng, num_points=64):
    encoder = HashGridEncoder(GRID)
    pts = rng.random((num_points, 3))
    corners = {
        level: encoder.voxel_vertices(pts, level)[0]
        for level in range(GRID.num_levels)
    }
    return EncodingBatch(
        corners=corners,
        point_ray=np.zeros(num_points, dtype=np.int64),
        num_points=num_points,
    )


class TestEncodingEngine:
    def test_report_counts(self, rng):
        engine = EncodingEngine(ArchConfig.server(), GRID)
        report = engine.process_batch(_batch(rng))
        assert report.lookups == 64 * 8 * GRID.num_levels
        assert report.cycles > 0
        assert 0 <= report.cache_hits <= report.lookups

    def test_cache_reduces_xbar_accesses(self, rng):
        batch = _batch(rng)
        cached = EncodingEngine(ArchConfig.server(cache_entries=16), GRID)
        uncached = EncodingEngine(ArchConfig.server(cache_entries=0), GRID)
        r_cached = cached.process_batch(batch)
        r_uncached = uncached.process_batch(batch)
        assert r_cached.xbar_accesses < r_uncached.xbar_accesses
        assert r_uncached.cache_hits == 0

    def test_hash_mode_serialises_levels(self, rng):
        batch = _batch(rng)
        hybrid = EncodingEngine(
            ArchConfig.server(cache_entries=0), GRID
        ).process_batch(batch)
        hashed = EncodingEngine(
            ArchConfig.server(cache_entries=0, mapping_mode="hash"), GRID
        ).process_batch(batch)
        assert hashed.cycles > hybrid.cycles

    def test_stateful_cache_across_batches(self, rng):
        """A second identical batch should hit the cache harder."""
        engine = EncodingEngine(ArchConfig.server(), GRID)
        batch = _batch(rng)
        first = engine.process_batch(batch)
        second = engine.process_batch(batch)
        assert second.cache_hits >= first.cache_hits

    def test_energy_positive_with_misses(self, rng):
        engine = EncodingEngine(ArchConfig.server(cache_entries=0), GRID)
        report = engine.process_batch(_batch(rng))
        assert report.xbar_energy_pj > 0


class TestMLPEngine:
    def test_initiation_interval(self):
        engine = MLPEngine(ArchConfig.server(), DENSITY, COLOR)
        assert engine.density_cycles_per_point > 0
        assert engine.color_cycles_per_point >= engine.density_cycles_per_point

    def test_throughput_scales_with_engines(self):
        one = MLPEngine(ArchConfig.server(density_engines=1, color_engines=1),
                        DENSITY, COLOR)
        four = MLPEngine(ArchConfig.server(density_engines=4, color_engines=4),
                         DENSITY, COLOR)
        r1 = one.process(1000, 1000)
        r4 = four.process(1000, 1000)
        assert r4.cycles < r1.cycles

    def test_color_decoupling_reduces_cycles(self):
        engine = MLPEngine(ArchConfig.server(), DENSITY, COLOR)
        full = engine.process(1000, 1000)
        decoupled = engine.process(1000, 500)
        assert decoupled.color_cycles < full.color_cycles
        assert decoupled.density_cycles == full.density_cycles

    def test_energy_scales_with_points(self):
        engine = MLPEngine(ArchConfig.server(), DENSITY, COLOR)
        assert engine.process(200, 200).energy_pj == pytest.approx(
            2 * engine.process(100, 100).energy_pj
        )

    def test_report_merge(self):
        engine = MLPEngine(ArchConfig.server(), DENSITY, COLOR)
        a = engine.process(100, 50)
        b = engine.process(200, 100)
        total_cycles = a.cycles + b.cycles
        a.merge(b)
        assert a.cycles == total_cycles
        assert a.density_points == 300


class TestRenderEngine:
    def test_throughput_lanes(self):
        engine = RenderEngine(ArchConfig.server(rgb_lanes=8))
        report = engine.process(composited_points=80)
        assert report.rgb_cycles == 10

    def test_units_overlap(self):
        engine = RenderEngine(ArchConfig.server())
        report = engine.process(
            composited_points=800, interpolated_points=160, difficulty_evals=80
        )
        assert report.cycles == max(
            report.rgb_cycles, report.approx_cycles, report.adaptive_cycles
        )

    def test_zero_work_zero_cycles(self):
        engine = RenderEngine(ArchConfig.server())
        assert engine.process(0, 0, 0).cycles == 0

    def test_merge_accumulates(self):
        engine = RenderEngine(ArchConfig.server())
        a = engine.process(100, 10, 5)
        b = engine.process(200, 20, 10)
        composited = a.composited_points + b.composited_points
        a.merge(b)
        assert a.composited_points == composited
