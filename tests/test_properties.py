"""Cross-module property-based tests (hypothesis).

These check the invariants the reproduction's conclusions rest on, over
randomly generated inputs rather than fixtures.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cim.address import bit_reorder_address, dense_slot_size
from repro.cim.cache import exact_lru_hits, window_hits
from repro.cim.memxbar import MemXbarBank
from repro.core.approximation import anchor_indices, interpolate_group_colors
from repro.core.sampling_plan import interpolate_budgets, probe_pixel_indices
from repro.metrics.image import psnr, ssim
from repro.nerf.hashgrid import hash_coords
from repro.nerf.volume import (
    composite,
    composite_subsample,
    early_termination_counts,
    transmittance,
)

finite = st.floats(0.0, 1.0, allow_nan=False)


class TestVolumeProperties:
    @given(st.integers(1, 32), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_composite_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        sigmas = rng.random((4, n)) * 50
        colors = rng.random((4, n, 3))
        deltas = rng.random((4, n)) * 0.2
        rgb, opacity = composite(sigmas, colors, deltas, background=1.0)
        assert np.all(rgb >= -1e-9)
        assert np.all(rgb <= 1.0 + 1e-9)
        assert np.all((opacity >= 0) & (opacity <= 1 + 1e-9))

    @given(st.integers(1, 32), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_transmittance_in_unit_interval(self, n, seed):
        rng = np.random.default_rng(seed)
        alphas = rng.random((3, n))
        trans = transmittance(alphas)
        assert np.all((trans >= 0) & (trans <= 1 + 1e-12))

    @given(st.integers(2, 64), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_subsample_error_vanishes_at_full_count(self, n, seed):
        rng = np.random.default_rng(seed)
        sigmas = rng.random((2, n)) * 20
        colors = rng.random((2, n, 3))
        deltas = np.full((2, n), 0.05)
        full, _ = composite(sigmas, colors, deltas)
        sub = composite_subsample(sigmas, colors, deltas, n)
        np.testing.assert_allclose(sub, full, atol=1e-9)

    @given(st.integers(1, 32), st.floats(0.5, 0.999), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_early_termination_monotone(self, n, threshold, seed):
        rng = np.random.default_rng(seed)
        sigmas = rng.random((4, n)) * 30
        deltas = np.full((4, n), 0.1)
        counts = early_termination_counts(sigmas, deltas, threshold)
        tighter = early_termination_counts(sigmas, deltas, min(0.9999, threshold + 0.0005))
        assert np.all(counts <= tighter)


class TestApproximationProperties:
    @given(st.integers(2, 48), st.integers(1, 8), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_interpolation_convexity(self, n, g, seed):
        rng = np.random.default_rng(seed)
        anchors = anchor_indices(n, g)
        anchor_colors = rng.random((3, len(anchors), 3))
        t = np.sort(rng.random((3, n)), axis=-1)
        out = interpolate_group_colors(anchor_colors, anchors, t)
        assert out.min() >= anchor_colors.min() - 1e-12
        assert out.max() <= anchor_colors.max() + 1e-12

    @given(st.integers(1, 64), st.integers(1, 8))
    @settings(max_examples=40)
    def test_anchor_savings_bounded(self, n, g):
        anchors = anchor_indices(n, g)
        assert 1 <= len(anchors) <= n


class TestAddressProperties:
    @given(st.integers(2, 32), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_bit_reorder_injective_on_random_coords(self, res, seed):
        rng = np.random.default_rng(seed)
        coords = rng.integers(0, res + 1, size=(64, 3))
        unique_coords = np.unique(coords, axis=0)
        addrs = bit_reorder_address(unique_coords, res)
        assert len(np.unique(addrs)) == len(unique_coords)
        assert addrs.max() < dense_slot_size(res)

    @given(st.integers(8, 2**16), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_hash_uniform_range(self, table, seed):
        rng = np.random.default_rng(seed)
        coords = rng.integers(0, 10000, size=(256, 3))
        idx = hash_coords(coords, table)
        assert idx.min() >= 0
        assert idx.max() < table


class TestCacheProperties:
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=60),
           st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_window_subset_of_lru(self, stream, cap):
        stream = np.array(stream)
        w = window_hits(stream, cap)
        l = exact_lru_hits(stream, cap)
        assert np.all(~w | l)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_first_occurrences_always_miss(self, stream):
        stream = np.array(stream)
        hits = window_hits(stream, 10**6)
        first_pos = {}
        for i, v in enumerate(stream.tolist()):
            if v not in first_pos:
                first_pos[v] = i
                assert not hits[i]


class TestConflictProperties:
    @given(st.integers(1, 8), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_cycles_bounded_by_group_size(self, k, seed):
        rng = np.random.default_rng(seed)
        bank = MemXbarBank(64 * 16)
        group = rng.integers(0, 64 * 16, size=(5, k))
        stats = bank.read_cycles(group)
        assert 5 <= stats.cycles <= 5 * k


class TestPlanProperties:
    @given(st.integers(6, 40), st.integers(6, 40), st.integers(2, 8),
           st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_interpolated_budgets_within_probe_range(self, h, w, stride, seed):
        rng = np.random.default_rng(seed)
        _, rows, cols = probe_pixel_indices(h, w, stride)
        probe = rng.integers(4, 48, size=len(rows) * len(cols)).astype(float)
        out = interpolate_budgets(probe, rows, cols, h, w)
        assert out.min() >= np.floor(probe.min())
        assert out.max() <= np.ceil(probe.max())


class TestMetricProperties:
    @given(st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_psnr_ssim_agree_on_ranking(self, seed):
        """Both metrics must rank a lightly-corrupted image above a
        heavily-corrupted one."""
        rng = np.random.default_rng(seed)
        img = rng.random((24, 24, 3))
        light = np.clip(img + rng.normal(0, 0.02, img.shape), 0, 1)
        heavy = np.clip(img + rng.normal(0, 0.25, img.shape), 0, 1)
        assert psnr(img, light) > psnr(img, heavy)
        assert ssim(img, light) > ssim(img, heavy)
