"""Tests for trace generation and locality profiling."""

import numpy as np
import pytest

from repro.arch.trace import (
    encoding_corner_stream,
    hash_address_trace,
    repetition_profile,
    voxel_ids,
)
from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder

GRID = HashGridConfig(
    num_levels=4, table_size=2**11, base_resolution=4, max_resolution=32
)


class TestCornerStream:
    def test_batches_cover_all_points(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        budgets = np.full(24 * 24, 8, dtype=np.int64)
        batches = list(encoding_corner_stream(camera, budgets, GRID, 64))
        total = sum(b.num_points for b in batches)
        # Only rays hitting the cube generate points.
        assert 0 < total <= 24 * 24 * 8

    def test_batch_contents(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        budgets = np.full(24 * 24, 8, dtype=np.int64)
        batch = next(encoding_corner_stream(camera, budgets, GRID, 32))
        assert set(batch.corners) == set(range(GRID.num_levels))
        assert batch.corners[0].shape == (batch.num_points, 8, 3)
        assert batch.point_ray.shape == (batch.num_points,)

    def test_zero_budgets_no_batches(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        budgets = np.zeros(24 * 24, dtype=np.int64)
        assert list(encoding_corner_stream(camera, budgets, GRID)) == []

    def test_mixed_budgets_grouped(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        budgets = np.full(24 * 24, 4, dtype=np.int64)
        budgets[: 24 * 12] = 8
        batches = list(encoding_corner_stream(camera, budgets, GRID, 4096))
        assert len(batches) >= 2


class TestVoxelIds:
    def test_distinct_voxels_distinct_ids(self, rng):
        encoder = HashGridEncoder(GRID)
        pts = rng.random((100, 3))
        corners, _ = encoder.voxel_vertices(pts, 3)
        ids = voxel_ids(corners, int(GRID.level_resolutions[3]))
        # Points in the same voxel share ids; different voxels differ.
        recomputed = voxel_ids(corners, int(GRID.level_resolutions[3]))
        np.testing.assert_array_equal(ids, recomputed)

    def test_same_voxel_same_id(self):
        encoder = HashGridEncoder(GRID)
        pts = np.array([[0.51, 0.51, 0.51], [0.52, 0.52, 0.52]])
        corners, _ = encoder.voxel_vertices(pts, 0)  # res 4: same voxel
        ids = voxel_ids(corners, 4)
        assert ids[0] == ids[1]


class TestRepetitionProfile:
    def test_inter_ray_locality_decreases_with_resolution(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        inter, intra = repetition_profile(camera, GRID, 16, max_ray_pairs=32)
        assert len(inter) == GRID.num_levels
        # Coarse levels repeat more than fine levels (Figure 15a).
        assert inter[0] >= inter[-1]

    def test_inter_ray_high_at_coarse_level(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        inter, _ = repetition_profile(camera, GRID, 16, max_ray_pairs=32)
        assert inter[0] > 0.5

    def test_intra_ray_concentration(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        _, intra = repetition_profile(camera, GRID, 16, max_ray_pairs=32)
        # At the coarsest level many of a ray's samples share one voxel.
        assert intra[0] >= intra[-1]
        assert intra[0] >= 2


class TestHashAddressTrace:
    def test_trace_length(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        trace = hash_address_trace(camera, GRID, 16, num_points=200)
        assert len(trace) == 200

    def test_addresses_in_table_range(self, lego_dataset):
        camera = lego_dataset.cameras[0]
        trace = hash_address_trace(camera, GRID, 16, num_points=300)
        assert trace.min() >= 0
        assert trace.max() < GRID.table_size

    def test_poor_locality(self, lego_dataset):
        """Figure 4's point: hashed accesses scatter across the table.

        Instant-NGP's pi_1 = 1 keeps x-steps local, but any y/z movement
        hashes far away — a sizeable fraction of consecutive accesses must
        leave the 64-entry crossbar row range entirely.
        """
        camera = lego_dataset.cameras[0]
        trace = hash_address_trace(camera, GRID, 16, num_points=500)
        jumps = np.abs(np.diff(trace))
        assert (jumps > 64).mean() > 0.1
        assert jumps.mean() > 32
