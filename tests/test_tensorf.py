"""Tests for the TensoRF substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nerf.tensorf import TensoRFConfig, TensoRFModel
from tests.conftest import TEST_TENSORF_CONFIG


class TestConfig:
    def test_encoding_dim(self):
        cfg = TensoRFConfig(resolution=16, num_components=6)
        assert cfg.encoding_dim == 18

    def test_invalid_resolution(self):
        with pytest.raises(ConfigurationError):
            TensoRFConfig(resolution=2)

    def test_invalid_components(self):
        with pytest.raises(ConfigurationError):
            TensoRFConfig(num_components=0)


class TestEncoding:
    def test_encode_shape(self, rng):
        model = TensoRFModel(TEST_TENSORF_CONFIG, seed=0)
        out = model.encode(rng.random((9, 3)))
        assert out.shape == (9, TEST_TENSORF_CONFIG.encoding_dim)

    def test_encode_continuous(self):
        model = TensoRFModel(TEST_TENSORF_CONFIG, seed=0)
        eps = 1e-7
        p = np.array([[0.5 - eps, 0.3, 0.6], [0.5 + eps, 0.3, 0.6]])
        out = model.encode(p)
        np.testing.assert_allclose(out[0], out[1], atol=1e-4)

    def test_encode_deterministic(self, rng):
        pts = rng.random((4, 3))
        a = TensoRFModel(TEST_TENSORF_CONFIG, seed=5).encode(pts)
        b = TensoRFModel(TEST_TENSORF_CONFIG, seed=5).encode(pts)
        np.testing.assert_array_equal(a, b)

    def test_encode_backward_moves_toward_target(self, rng):
        model = TensoRFModel(TEST_TENSORF_CONFIG, seed=1)
        pts = rng.random((32, 3))
        target = rng.normal(size=(32, TEST_TENSORF_CONFIG.encoding_dim))
        before = np.mean((model.encode(pts) - target) ** 2)
        for _ in range(60):
            grad = 2 * (model.encode(pts) - target) / len(pts)
            model.encode_backward(pts, grad, learning_rate=0.01)
        after = np.mean((model.encode(pts) - target) ** 2)
        assert after < before * 0.7


class TestQueries:
    def test_query_density_shapes(self, rng):
        model = TensoRFModel(TEST_TENSORF_CONFIG, seed=0)
        sigma, geo = model.query_density(rng.random((11, 3)))
        assert sigma.shape == (11,)
        assert geo.shape == (11, TEST_TENSORF_CONFIG.geo_feature_dim)
        assert np.all(sigma >= 0)

    def test_query_color_range(self, rng):
        model = TensoRFModel(TEST_TENSORF_CONFIG, seed=0)
        _, geo = model.query_density(rng.random((5, 3)))
        dirs = rng.normal(size=(5, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        rgb = model.query_color(geo, dirs)
        assert np.all((rgb >= 0) & (rgb <= 1))

    def test_flops_accessors_positive(self):
        model = TensoRFModel(TEST_TENSORF_CONFIG)
        assert model.flops_embedding_per_point() > 0
        assert model.flops_density_per_point() > 0
        assert model.flops_color_per_point() > 0
        assert model.bytes_embedding_per_point() > 0

    def test_parameter_count(self):
        model = TensoRFModel(TensoRFConfig(resolution=8, num_components=2))
        grids = 3 * (2 * 8 * 8) + 3 * (2 * 8)
        assert model.parameter_count() > grids


class TestDistilledQuality(object):
    def test_trained_model_fits_density(self, trained_tensorf, lego_dataset, rng):
        pts = rng.random((1500, 3))
        pred, _ = trained_tensorf.query_density(pts)
        true = lego_dataset.scene.density(pts)
        corr = np.corrcoef(pred, true)[0, 1]
        assert corr > 0.7
