"""Tests for probe grids and budget interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling_plan import (
    SamplingPlan,
    interpolate_budgets,
    probe_pixel_indices,
)
from repro.errors import ConfigurationError


class TestProbeGrid:
    def test_includes_corners(self):
        idx, rows, cols = probe_pixel_indices(20, 20, 5)
        assert 0 in idx
        assert (20 * 20 - 1) in idx

    def test_stride_one_covers_everything(self):
        idx, rows, cols = probe_pixel_indices(6, 7, 1)
        assert len(idx) == 42

    def test_probe_count_roughly_inverse_square(self):
        idx, _, _ = probe_pixel_indices(50, 50, 5)
        assert len(idx) == pytest.approx(50 * 50 / 25, rel=0.3)

    def test_invalid_stride(self):
        with pytest.raises(ConfigurationError):
            probe_pixel_indices(10, 10, 0)

    def test_rows_cols_sorted_unique(self):
        _, rows, cols = probe_pixel_indices(23, 17, 4)
        assert np.all(np.diff(rows) > 0)
        assert np.all(np.diff(cols) > 0)
        assert rows[-1] == 22
        assert cols[-1] == 16


class TestInterpolation:
    def test_constant_field_preserved(self):
        _, rows, cols = probe_pixel_indices(16, 16, 4)
        probe = np.full(len(rows) * len(cols), 24.0)
        out = interpolate_budgets(probe, rows, cols, 16, 16)
        np.testing.assert_array_equal(out, np.full(256, 24))

    def test_probe_values_recovered(self):
        _, rows, cols = probe_pixel_indices(12, 12, 3)
        rng = np.random.default_rng(0)
        probe = rng.integers(4, 48, size=len(rows) * len(cols)).astype(float)
        out = interpolate_budgets(probe, rows, cols, 12, 12).reshape(12, 12)
        grid = probe.reshape(len(rows), len(cols))
        for i, r in enumerate(rows):
            for j, c in enumerate(cols):
                assert out[r, c] == int(np.ceil(grid[i, j] - 1e-9))

    def test_interpolation_bounded_by_neighbours(self):
        _, rows, cols = probe_pixel_indices(10, 10, 9)
        probe = np.array([10.0, 20.0, 30.0, 40.0])  # 2x2 probe grid
        out = interpolate_budgets(probe, rows, cols, 10, 10)
        assert out.min() >= 10
        assert out.max() <= 40

    def test_paper_weight_example(self):
        """Figure 6a: a pixel 1/3 of the way between probes mixes 2/3 + 1/3."""
        rows = np.array([0, 3])
        cols = np.array([0, 3])
        probe = np.array([30.0, 30.0, 0.0, 0.0])  # top row 30, bottom row 0
        out = interpolate_budgets(probe, rows, cols, 4, 4).reshape(4, 4)
        assert out[1, 0] == int(np.ceil(2 / 3 * 30))

    @given(st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=20)
    def test_output_covers_all_pixels(self, h_factor, w_factor):
        height, width = 4 * h_factor, 4 * w_factor
        _, rows, cols = probe_pixel_indices(height, width, 4)
        probe = np.arange(len(rows) * len(cols), dtype=float)
        out = interpolate_budgets(probe, rows, cols, height, width)
        assert out.shape == (height * width,)
        assert np.all(out >= 0)


class TestSamplingPlan:
    def test_average_budget(self):
        plan = SamplingPlan(
            budgets=np.array([10, 20, 30, 40]),
            probe_indices=np.array([0]),
            probe_budgets=np.array([10]),
            full_budget=40,
        )
        assert plan.average_budget == 25.0
        assert plan.savings == pytest.approx(1 - 25 / 40)

    def test_budget_image_shape(self):
        plan = SamplingPlan(
            budgets=np.arange(12),
            probe_indices=np.array([]),
            probe_budgets=np.array([]),
            full_budget=12,
        )
        assert plan.budget_image(3, 4).shape == (3, 4)
