"""Tests for the MLP substrate (forward, backward, FLOP accounting)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nerf.mlp import MLP, MLPConfig


class TestMLPConfig:
    def test_layer_dims(self):
        cfg = MLPConfig(input_dim=8, hidden_dim=16, num_hidden=2, output_dim=3)
        assert cfg.layer_dims == [(8, 16), (16, 16), (16, 3)]

    def test_zero_hidden_is_linear(self):
        cfg = MLPConfig(input_dim=4, hidden_dim=16, num_hidden=0, output_dim=2)
        assert cfg.layer_dims == [(4, 2)]

    @pytest.mark.parametrize("field", ["input_dim", "hidden_dim", "output_dim"])
    def test_invalid_dims_rejected(self, field):
        kwargs = dict(input_dim=4, hidden_dim=8, num_hidden=1, output_dim=2)
        kwargs[field] = 0
        with pytest.raises(ConfigurationError):
            MLPConfig(**kwargs)

    def test_negative_hidden_rejected(self):
        with pytest.raises(ConfigurationError):
            MLPConfig(input_dim=4, hidden_dim=8, num_hidden=-1, output_dim=2)


class TestForward:
    def test_output_shape(self, rng):
        mlp = MLP(MLPConfig(6, 16, 2, 3))
        out, cache = mlp.forward(rng.normal(size=(10, 6)))
        assert out.shape == (10, 3)
        assert cache is None

    def test_cache_contents(self, rng):
        mlp = MLP(MLPConfig(6, 16, 2, 3))
        _, cache = mlp.forward(rng.normal(size=(4, 6)), keep_activations=True)
        assert len(cache) == 3  # input + 2 hidden activations
        assert cache[0].shape == (4, 6)
        assert cache[1].shape == (4, 16)

    def test_deterministic_with_seed(self, rng):
        x = rng.normal(size=(5, 6))
        a = MLP(MLPConfig(6, 8, 1, 2), seed=3)(x)
        b = MLP(MLPConfig(6, 8, 1, 2), seed=3)(x)
        np.testing.assert_array_equal(a, b)

    def test_final_layer_linear(self, rng):
        """Doubling the last weight matrix must double the output."""
        mlp = MLP(MLPConfig(4, 8, 1, 2), seed=0)
        x = rng.normal(size=(6, 4))
        y1 = mlp(x)
        mlp.weights[-1] *= 2.0
        mlp.biases[-1] *= 2.0
        np.testing.assert_allclose(mlp(x), 2.0 * y1)


class TestBackward:
    def test_gradient_matches_numeric(self, rng):
        """Backward pass gradients agree with finite differences."""
        mlp = MLP(MLPConfig(3, 5, 1, 2), seed=7)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            out, _ = mlp.forward(x)
            return 0.5 * np.sum((out - target) ** 2)

        out, cache = mlp.forward(x, keep_activations=True)
        _, grad_ws, grad_bs = mlp.backward(cache, out - target)

        eps = 1e-6
        for li in range(len(mlp.weights)):
            w = mlp.weights[li]
            i, j = 1 % w.shape[0], 0
            w[i, j] += eps
            up = loss()
            w[i, j] -= 2 * eps
            down = loss()
            w[i, j] += eps
            numeric = (up - down) / (2 * eps)
            assert grad_ws[li][i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_input_gradient_matches_numeric(self, rng):
        mlp = MLP(MLPConfig(3, 5, 1, 2), seed=7)
        x = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 2))
        out, cache = mlp.forward(x, keep_activations=True)
        grad_in, _, _ = mlp.backward(cache, out - target)

        eps = 1e-6

        def loss(xv):
            out, _ = mlp.forward(xv)
            return 0.5 * np.sum((out - target) ** 2)

        xp = x.copy()
        xp[0, 1] += eps
        xm = x.copy()
        xm[0, 1] -= eps
        numeric = (loss(xp) - loss(xm)) / (2 * eps)
        assert grad_in[0, 1] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_training_reduces_loss(self, rng):
        mlp = MLP(MLPConfig(4, 16, 1, 1), seed=1)
        x = rng.normal(size=(64, 4))
        y = np.sin(x.sum(axis=1, keepdims=True))
        first = None
        for _ in range(200):
            out, cache = mlp.forward(x, keep_activations=True)
            err = out - y
            loss = float(np.mean(err**2))
            if first is None:
                first = loss
            _, gw, gb = mlp.backward(cache, 2 * err / len(x))
            for wi, g in zip(mlp.weights, gw):
                wi -= 0.05 * g
            for bi, g in zip(mlp.biases, gb):
                bi -= 0.05 * g
        assert loss < first * 0.5


class TestAccounting:
    def test_parameter_count(self):
        mlp = MLP(MLPConfig(4, 8, 1, 2))
        expected = 4 * 8 + 8 + 8 * 2 + 2
        assert mlp.parameter_count() == expected

    def test_flops_per_point(self):
        mlp = MLP(MLPConfig(4, 8, 1, 2))
        assert mlp.flops_per_point() == 2 * (4 * 8 + 8 * 2)

    def test_parameters_list_alternates(self):
        mlp = MLP(MLPConfig(4, 8, 2, 2))
        params = mlp.parameters()
        assert len(params) == 6
        assert params[0].shape == (4, 8)
        assert params[1].shape == (8,)
