"""Tests for accelerator configuration and the Table 2 energy model."""

import pytest

from repro.arch.config import ArchConfig
from repro.arch.energy import COMPONENT_TABLE, TOTALS, AreaPowerModel
from repro.cim.reram import SRAM
from repro.errors import ConfigurationError


class TestArchConfig:
    def test_server_defaults(self):
        cfg = ArchConfig.server()
        assert cfg.name == "server"
        assert cfg.address_units == 64
        assert cfg.mem_xbar_mb == 64

    def test_edge_scaled_down(self):
        server, edge = ArchConfig.server(), ArchConfig.edge()
        assert edge.address_units < server.address_units
        assert edge.density_engines < server.density_engines
        assert edge.mem_xbar_mb < server.mem_xbar_mb

    def test_strawman_disables_reuse(self):
        cfg = ArchConfig.strawman()
        assert cfg.mapping_mode == "hash"
        assert cfg.cache_entries == 0

    def test_strawman_edge_scale(self):
        cfg = ArchConfig.strawman("edge")
        assert "edge" in cfg.name
        assert cfg.address_units == 16

    def test_overrides(self):
        cfg = ArchConfig.server(cache_entries=16)
        assert cfg.cache_entries == 16

    def test_with_sram_memory(self):
        cfg = ArchConfig.server().with_sram_memory()
        assert cfg.memory_device is SRAM

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ArchConfig(address_units=0)

    def test_negative_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            ArchConfig(cache_entries=-1)


class TestAreaPowerModel:
    def test_totals_match_table2(self):
        """Component sums must reproduce the published totals (±2%)."""
        for scale in ("server", "edge"):
            model = AreaPowerModel(scale)
            area, power = TOTALS[scale]
            assert model.total_area_mm2() == pytest.approx(area, rel=0.02)
            assert model.total_power_w() == pytest.approx(power, rel=0.02)

    def test_every_component_has_both_scales(self):
        for component, entries in COMPONENT_TABLE.items():
            assert set(entries) == {"server", "edge"}

    def test_edge_smaller_than_server(self):
        for component, entries in COMPONENT_TABLE.items():
            assert entries["edge"][0] < entries["server"][0]
            assert entries["edge"][1] <= entries["server"][1]

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            AreaPowerModel("laptop")

    def test_energy_charges_busy_components(self):
        model = AreaPowerModel("server")
        energy = model.energy_j({"encoding": 1.0, "mlp": 0.0, "render": 0.0}, 1.0)
        assert energy["mem_xbars"] > energy["density_subengine"]

    def test_energy_includes_leakage(self):
        model = AreaPowerModel("server")
        energy = model.energy_j({"encoding": 0.0, "mlp": 0.0, "render": 0.0}, 1.0)
        # Idle components still leak ~10% of their power.
        assert all(v > 0 for v in energy.values())

    def test_shared_buffers_charged_for_total_time(self):
        model = AreaPowerModel("server")
        energy = model.energy_j({"encoding": 0.0, "mlp": 0.0, "render": 0.0}, 2.0)
        expected = model.power_w("buffers") * 2.0 + 0.1 * model.power_w("buffers") * 2.0
        assert energy["buffers"] == pytest.approx(expected)
