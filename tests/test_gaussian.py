"""Tests for the 3DGS substrate and adaptive Gaussian sampling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SceneError
from repro.gaussian.adaptive import AdaptiveGaussianConfig, AdaptiveGaussianRenderer
from repro.gaussian.render import GaussianRenderer
from repro.gaussian.splats import GaussianCloud, fit_gaussians
from repro.metrics.image import psnr
from repro.scenes.analytic import make_scene
from repro.scenes.cameras import orbit_cameras


@pytest.fixture(scope="module")
def cloud():
    return fit_gaussians(make_scene("mic"), count=400, radius=0.03, seed=1)


@pytest.fixture(scope="module")
def camera():
    return orbit_cameras(1, 32, 32, radius=1.4)[0]


class TestCloud:
    def test_fit_count(self, cloud):
        assert 100 < len(cloud) <= 400

    def test_positions_in_cube(self, cloud):
        assert cloud.positions.min() >= 0.0
        assert cloud.positions.max() <= 1.0

    def test_positions_on_surface(self, cloud):
        scene = make_scene("mic")
        density = scene.density(cloud.positions)
        assert np.mean(density > scene.sigma_max * 0.4) > 0.9

    def test_colors_valid(self, cloud):
        assert cloud.colors.min() >= 0 and cloud.colors.max() <= 1

    def test_invalid_shapes_rejected(self):
        with pytest.raises(SceneError):
            GaussianCloud(
                positions=np.zeros((3, 3)),
                radii=np.zeros(2),
                colors=np.zeros((3, 3)),
                opacities=np.zeros(3),
            )

    def test_deterministic(self):
        a = fit_gaussians(make_scene("chair"), count=100, seed=4)
        b = fit_gaussians(make_scene("chair"), count=100, seed=4)
        np.testing.assert_array_equal(a.positions, b.positions)


class TestRenderer:
    def test_image_shape_range(self, cloud, camera):
        result = GaussianRenderer(cloud).render_image(camera)
        assert result.image.shape == (32, 32, 3)
        assert result.image.min() >= 0
        assert result.image.max() <= 1 + 1e-9

    def test_object_visible(self, cloud, camera):
        result = GaussianRenderer(cloud).render_image(camera)
        assert result.blends_total > 0
        assert result.image.std() > 0.01

    def test_blend_counts_consistent(self, cloud, camera):
        result = GaussianRenderer(cloud).render_image(camera)
        assert result.blend_counts.sum() == result.blends_total

    def test_budget_caps_blends(self, cloud, camera):
        renderer = GaussianRenderer(cloud)
        full = renderer.render_image(camera)
        caps = np.full(32 * 32, 2, dtype=np.int64)
        capped = renderer.render_image(camera, caps)
        assert capped.blend_counts.max() <= 2
        assert capped.blends_total < full.blends_total

    def test_projection_depths(self, cloud, camera):
        renderer = GaussianRenderer(cloud)
        _, depth, _, visible = renderer.project(camera)
        assert np.all(depth[visible] > 0)

    def test_similar_to_volume_reference(self, camera):
        """The splatted image should resemble the scene's volume render."""
        from repro.scenes.dataset import render_analytic

        scene = make_scene("mic")
        cloud = fit_gaussians(scene, count=800, radius=0.025, seed=2)
        splat = GaussianRenderer(cloud).render_image(camera)
        reference = render_analytic(scene, camera, num_samples=96)
        assert psnr(splat.image, reference) > 12.0


class TestAdaptive:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveGaussianConfig(probe_stride=0)
        with pytest.raises(ConfigurationError):
            AdaptiveGaussianConfig(candidate_fractions=(1.5,))

    def test_savings_with_quality(self, cloud, camera):
        """The Section 8.2 extension: fewer blends, near-identical image."""
        renderer = GaussianRenderer(cloud)
        full = renderer.render_image(camera)
        adaptive = AdaptiveGaussianRenderer(
            renderer, AdaptiveGaussianConfig(probe_stride=4)
        )
        result, stats = adaptive.render_image(camera)
        assert stats["adaptive_blends"] <= stats["full_blends"]
        assert psnr(result.image, full.image) > 25.0

    def test_budgets_cover_image(self, cloud, camera):
        adaptive = AdaptiveGaussianRenderer(GaussianRenderer(cloud))
        budgets, _ = adaptive.plan_budgets(camera)
        assert budgets.shape == (32 * 32,)
        assert budgets.min() >= 1

    def test_loose_threshold_saves_more(self, cloud, camera):
        renderer = GaussianRenderer(cloud)
        strict = AdaptiveGaussianRenderer(
            renderer, AdaptiveGaussianConfig(threshold=1e-6)
        )
        loose = AdaptiveGaussianRenderer(
            renderer, AdaptiveGaussianConfig(threshold=0.2)
        )
        _, s_strict = strict.render_image(camera)
        _, s_loose = loose.render_image(camera)
        assert s_loose["adaptive_blends"] <= s_strict["adaptive_blends"]
