"""Tests for device parameters and the CIM crossbar MVM model."""

import pytest

from repro.cim.crossbar import CIMCrossbarModel, CrossbarConfig
from repro.cim.reram import RERAM, SRAM, DeviceParams
from repro.errors import ConfigurationError


class TestDeviceParams:
    def test_reram_denser_than_sram(self):
        assert RERAM.density_mm2_per_mb < SRAM.density_mm2_per_mb

    def test_reram_multibit_cells(self):
        assert RERAM.cell_bits >= 2
        assert SRAM.cell_bits == 1

    def test_invalid_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceParams("x", 0, 1, 1, 1, 1, 1, 1.0)


class TestCrossbarConfig:
    def test_paper_defaults(self):
        cfg = CrossbarConfig()
        assert cfg.rows == 64 and cfg.cols == 64
        assert cfg.adc_bits == 5

    def test_cells_per_weight(self):
        cfg = CrossbarConfig(weight_bits=8, device=RERAM)  # 2-bit cells
        assert cfg.cells_per_weight == 4

    def test_cells_per_weight_sram(self):
        cfg = CrossbarConfig(weight_bits=8, device=SRAM)  # 1-bit cells
        assert cfg.cells_per_weight == 8

    def test_weights_per_array(self):
        cfg = CrossbarConfig()
        assert cfg.weights_per_array == 64 * (64 // 4)

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            CrossbarConfig(rows=0)


class TestMVMCost:
    def test_small_matrix_single_tile(self):
        model = CIMCrossbarModel(CrossbarConfig())
        assert model.tiles_for_matrix(64, 16) == 1

    def test_tile_count_scales(self):
        model = CIMCrossbarModel(CrossbarConfig())
        assert model.tiles_for_matrix(128, 16) == 2
        assert model.tiles_for_matrix(128, 32) == 4

    def test_cycles_are_bit_serial(self):
        model = CIMCrossbarModel(CrossbarConfig(input_bits=8))
        cost = model.mvm_cost(64, 16, parallel_arrays=4)
        assert cost.cycles == 8  # one wave x 8 input bits

    def test_serialisation_without_parallelism(self):
        model = CIMCrossbarModel(CrossbarConfig(input_bits=8))
        serial = model.mvm_cost(256, 64, parallel_arrays=1)
        parallel = model.mvm_cost(256, 64, parallel_arrays=16)
        assert serial.cycles > parallel.cycles
        assert serial.arrays_used == parallel.arrays_used

    def test_energy_scales_with_tiles(self):
        model = CIMCrossbarModel(CrossbarConfig())
        small = model.mvm_cost(64, 16)
        large = model.mvm_cost(128, 32)
        assert large.energy_pj == pytest.approx(small.energy_pj * 4)

    def test_invalid_parallelism(self):
        model = CIMCrossbarModel(CrossbarConfig())
        with pytest.raises(ConfigurationError):
            model.mvm_cost(64, 16, parallel_arrays=0)

    def test_write_energy_positive(self):
        model = CIMCrossbarModel(CrossbarConfig())
        assert model.write_energy_pj(64, 16) > 0

    def test_sram_mvm_costs_more_energy(self):
        """SRAM CIM burns more per-op energy than ReRAM (Fig. 27 ordering)."""
        reram = CIMCrossbarModel(CrossbarConfig(device=RERAM)).mvm_cost(64, 16)
        sram = CIMCrossbarModel(CrossbarConfig(device=SRAM)).mvm_cost(64, 16)
        assert sram.energy_pj > reram.energy_pj
