"""Tests for memory-crossbar read conflict modelling."""

import numpy as np
import pytest

from repro.cim.memxbar import MemXbarBank
from repro.errors import ConfigurationError


class TestBankGeometry:
    def test_num_xbars(self):
        assert MemXbarBank(1000, rows=64).num_xbars == 16

    def test_xbar_of(self):
        bank = MemXbarBank(1000, rows=64)
        np.testing.assert_array_equal(
            bank.xbar_of(np.array([0, 63, 64, 127])), [0, 0, 1, 1]
        )

    def test_invalid_entries(self):
        with pytest.raises(ConfigurationError):
            MemXbarBank(0)


class TestReadCycles:
    def test_parallel_group_one_cycle(self):
        """8 addresses on 8 different crossbars read in one cycle."""
        bank = MemXbarBank(64 * 8, rows=64)
        group = np.arange(8)[None, :] * 64
        stats = bank.read_cycles(group)
        assert stats.cycles == 1
        assert stats.conflicts == 0
        assert stats.accesses == 8

    def test_full_conflict_serialises(self):
        """8 addresses on one crossbar take 8 cycles (Figure 3c)."""
        bank = MemXbarBank(64 * 8, rows=64)
        group = np.arange(8)[None, :]  # rows 0-7 of crossbar 0
        stats = bank.read_cycles(group)
        assert stats.cycles == 8
        assert stats.conflicts == 7

    def test_partial_conflict(self):
        bank = MemXbarBank(64 * 8, rows=64)
        group = np.array([[0, 1, 64, 128, 192, 256, 320, 384]])
        stats = bank.read_cycles(group)
        assert stats.cycles == 2  # crossbar 0 serves two reads

    def test_cache_hits_skip_reads(self):
        bank = MemXbarBank(64 * 8, rows=64)
        group = np.array([[0, -1, -1, -1, -1, -1, -1, -1]])
        stats = bank.read_cycles(group)
        assert stats.accesses == 1
        assert stats.cycles == 1

    def test_all_hits_zero_cycles(self):
        bank = MemXbarBank(64 * 8)
        stats = bank.read_cycles(np.full((4, 8), -1))
        assert stats.cycles == 0
        assert stats.accesses == 0
        assert stats.energy_pj == 0.0

    def test_multiple_groups_accumulate(self):
        bank = MemXbarBank(64 * 8, rows=64)
        groups = np.stack([np.arange(8) * 64, np.arange(8)])
        stats = bank.read_cycles(groups)
        assert stats.cycles == 1 + 8

    def test_energy_proportional_to_accesses(self):
        bank = MemXbarBank(64 * 8)
        one = bank.read_cycles(np.array([[5]]))
        four = bank.read_cycles(np.array([[5, 69, 133, 197]]))
        assert four.energy_pj == pytest.approx(one.energy_pj * 4)

    def test_groups_with_duplicates(self, rng):
        """Duplicate addresses in one group still serialise on the crossbar."""
        bank = MemXbarBank(64 * 4, rows=64)
        group = np.array([[7, 7, 7, 7]])
        stats = bank.read_cycles(group)
        assert stats.cycles == 4
