"""Tests for the top-level accelerator simulator."""

import numpy as np
import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.errors import SimulationError
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG


@pytest.fixture(scope="module")
def server_acc():
    return ASDRAccelerator(
        ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


@pytest.fixture(scope="module")
def edge_acc():
    return ASDRAccelerator(
        ArchConfig.edge(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


class TestSimulatePass:
    def test_report_fields(self, server_acc, lego_dataset):
        camera = lego_dataset.cameras[0]
        budgets = np.full(24 * 24, 12, dtype=np.int64)
        report = server_acc.simulate_pass(camera, budgets)
        assert report.total_cycles > 0
        assert report.time_seconds > 0
        assert report.energy_joules > 0
        assert report.mlp.density_points > 0

    def test_wrong_budget_length_rejected(self, server_acc, lego_dataset):
        with pytest.raises(SimulationError):
            server_acc.simulate_pass(lego_dataset.cameras[0], np.ones(7))

    def test_invalid_color_fraction_rejected(self, server_acc, lego_dataset):
        budgets = np.full(24 * 24, 4, dtype=np.int64)
        with pytest.raises(SimulationError):
            server_acc.simulate_pass(lego_dataset.cameras[0], budgets, 1.5)

    def test_zero_budgets_cost_nothing(self, server_acc, lego_dataset):
        report = server_acc.simulate_pass(
            lego_dataset.cameras[0], np.zeros(24 * 24, dtype=np.int64)
        )
        assert report.total_cycles == 0

    def test_more_points_more_cycles(self, server_acc, lego_dataset):
        camera = lego_dataset.cameras[0]
        small = server_acc.simulate_pass(camera, np.full(576, 6, dtype=np.int64))
        large = server_acc.simulate_pass(camera, np.full(576, 24, dtype=np.int64))
        assert large.total_cycles > small.total_cycles

    def test_color_fraction_reduces_mlp(self, server_acc, lego_dataset):
        camera = lego_dataset.cameras[0]
        budgets = np.full(576, 12, dtype=np.int64)
        full = server_acc.simulate_pass(camera, budgets, 1.0)
        half = server_acc.simulate_pass(camera, budgets, 0.5)
        assert half.mlp.color_points < full.mlp.color_points

    def test_difficulty_evals_charged(self, server_acc, lego_dataset):
        camera = lego_dataset.cameras[0]
        budgets = np.full(576, 8, dtype=np.int64)
        without = server_acc.simulate_pass(camera, budgets)
        with_de = server_acc.simulate_pass(camera, budgets, difficulty_evals=5000)
        assert with_de.render.adaptive_cycles > without.render.adaptive_cycles


class TestSimulateRender:
    def test_baseline_result(self, server_acc, lego_dataset, baseline_result):
        report = server_acc.simulate_render(lego_dataset.cameras[0], baseline_result)
        assert report.total_cycles > 0
        assert report.mlp.color_points == report.mlp.density_points

    def test_asdr_result_cheaper(self, server_acc, lego_dataset,
                                  baseline_result, asdr_result):
        camera = lego_dataset.cameras[0]
        base = server_acc.simulate_render(camera, baseline_result)
        asdr = server_acc.simulate_render(camera, asdr_result, group_size=2)
        assert asdr.total_cycles < base.total_cycles

    def test_group_size_reduces_color_points(self, server_acc, lego_dataset,
                                             asdr_result):
        camera = lego_dataset.cameras[0]
        g1 = server_acc.simulate_render(camera, asdr_result, group_size=1)
        g4 = server_acc.simulate_render(camera, asdr_result, group_size=4)
        assert g4.mlp.color_points < g1.mlp.color_points

    def test_edge_slower_than_server(self, server_acc, edge_acc, lego_dataset,
                                     asdr_result):
        camera = lego_dataset.cameras[0]
        s = server_acc.simulate_render(camera, asdr_result, group_size=2)
        e = edge_acc.simulate_render(camera, asdr_result, group_size=2)
        assert e.total_cycles > s.total_cycles

    def test_strawman_slower_than_server(self, lego_dataset, baseline_result):
        camera = lego_dataset.cameras[0]
        strawman = ASDRAccelerator(
            ArchConfig.strawman(),
            TEST_GRID,
            TEST_MODEL_CONFIG.density_mlp_config,
            TEST_MODEL_CONFIG.color_mlp_config,
        )
        server = ASDRAccelerator(
            ArchConfig.server(),
            TEST_GRID,
            TEST_MODEL_CONFIG.density_mlp_config,
            TEST_MODEL_CONFIG.color_mlp_config,
        )
        t_straw = strawman.simulate_render(camera, baseline_result).total_cycles
        t_server = server.simulate_render(camera, baseline_result).total_cycles
        assert t_straw > t_server * 2

    def test_energy_breakdown_components(self, server_acc, lego_dataset,
                                         asdr_result):
        report = server_acc.simulate_render(
            lego_dataset.cameras[0], asdr_result, group_size=2
        )
        assert "mem_xbars" in report.energy_by_component
        assert "color_subengine" in report.energy_by_component
        assert report.energy_joules == pytest.approx(
            sum(report.energy_by_component.values())
        )

    def test_merge_reports(self, server_acc, lego_dataset, asdr_result):
        camera = lego_dataset.cameras[0]
        a = server_acc.simulate_render(camera, asdr_result, group_size=2)
        b = server_acc.simulate_render(camera, asdr_result, group_size=2)
        cycles = a.total_cycles + b.total_cycles
        a.merge(b)
        assert a.total_cycles == cycles
