"""Tests for the distillation trainer."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nerf.model import InstantNGPModel
from repro.nerf.training import Adam, TrainingConfig, distill_scene
from repro.scenes.analytic import make_scene
from tests.conftest import TEST_MODEL_CONFIG


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    def test_invalid_steps(self):
        with pytest.raises(TrainingError):
            TrainingConfig(steps=0)

    def test_invalid_surface_fraction(self):
        with pytest.raises(TrainingError):
            TrainingConfig(surface_fraction=1.5)


class TestAdam:
    def test_minimises_quadratic(self):
        x = np.array([5.0, -3.0])
        opt = Adam([x], lr=0.1)
        for _ in range(300):
            opt.step([2 * x])
        assert np.abs(x).max() < 0.1

    def test_step_count_increments(self):
        x = np.zeros(2)
        opt = Adam([x], lr=0.1)
        opt.step([np.ones(2)])
        opt.step([np.ones(2)])
        assert opt.t == 2


class TestDistillation:
    def test_loss_decreases(self):
        scene = make_scene("mic")
        model = InstantNGPModel(TEST_MODEL_CONFIG, seed=0)
        losses = distill_scene(
            model, scene, TrainingConfig(steps=80, batch_size=512, seed=1)
        )
        assert len(losses) == 80
        # Per-step losses are noisy (fresh batch each step); compare the
        # settled tail against the start.
        assert np.mean(losses[-10:]) < losses[0] * 0.65

    def test_deterministic_given_seed(self):
        scene = make_scene("chair")
        cfg = TrainingConfig(steps=20, batch_size=256, seed=9)
        m1 = InstantNGPModel(TEST_MODEL_CONFIG, seed=4)
        m2 = InstantNGPModel(TEST_MODEL_CONFIG, seed=4)
        l1 = distill_scene(m1, scene, cfg)
        l2 = distill_scene(m2, scene, cfg)
        np.testing.assert_allclose(l1, l2)

    def test_density_field_learned(self, trained_model, lego_dataset, rng):
        """The distilled model must correlate with the analytic density."""
        pts = rng.random((2000, 3))
        pred, _ = trained_model.query_density(pts)
        true = lego_dataset.scene.density(pts)
        assert np.corrcoef(pred, true)[0, 1] > 0.8

    def test_color_field_learned(self, trained_model, lego_dataset, rng):
        """Colors near the surface must approximate the analytic shading."""
        scene = lego_dataset.scene
        candidates = rng.random((4000, 3))
        sigma = scene.density(candidates)
        surface = candidates[sigma > scene.sigma_max * 0.5][:300]
        dirs = rng.normal(size=(len(surface), 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        _, geo = trained_model.query_density(surface)
        pred = trained_model.query_color(geo, dirs)
        true = scene.color(surface, dirs)
        assert np.mean(np.abs(pred - true)) < 0.2
