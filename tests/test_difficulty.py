"""Tests for the Eq. (3) rendering-difficulty metric and budget selection."""

import numpy as np
import pytest

from repro.core.difficulty import rendering_difficulty, select_sample_budgets
from repro.nerf.volume import composite


class TestRenderingDifficulty:
    def test_identical_renders_zero(self, rng):
        rgb = rng.random((10, 3))
        np.testing.assert_array_equal(
            rendering_difficulty(rgb, rgb.copy()), np.zeros(10)
        )

    def test_max_channel_deviation(self):
        full = np.array([[0.5, 0.5, 0.5]])
        cand = np.array([[0.6, 0.45, 0.5]])
        assert rendering_difficulty(full, cand)[0] == pytest.approx(0.1)

    def test_symmetric(self, rng):
        a, b = rng.random((5, 3)), rng.random((5, 3))
        np.testing.assert_allclose(
            rendering_difficulty(a, b), rendering_difficulty(b, a)
        )


class TestBudgetSelection:
    def _make_rays(self, rng, num_rays=32, n=24):
        sigmas = rng.random((num_rays, n)) * 20
        colors = rng.random((num_rays, n, 3))
        deltas = np.full((num_rays, n), 0.05)
        return sigmas, colors, deltas

    def test_empty_rays_get_smallest_budget(self, rng):
        n = 24
        sigmas = np.zeros((8, n))
        colors = rng.random((8, n, 3))
        deltas = np.full((8, n), 0.05)
        budgets, _ = select_sample_budgets(
            sigmas, colors, deltas, [4, 8, n], threshold=1e-6
        )
        np.testing.assert_array_equal(budgets, np.full(8, 4))

    def test_infinite_threshold_gives_smallest(self, rng):
        sigmas, colors, deltas = self._make_rays(rng)
        budgets, _ = select_sample_budgets(
            sigmas, colors, deltas, [4, 12, 24], threshold=10.0
        )
        np.testing.assert_array_equal(budgets, np.full(32, 4))

    def test_zero_threshold_on_hard_rays_gives_full(self, rng):
        sigmas, colors, deltas = self._make_rays(rng)
        budgets, _ = select_sample_budgets(
            sigmas, colors, deltas, [4, 12, 24], threshold=0.0
        )
        # Random dense rays differ at any subsampling -> full budget.
        assert np.all(budgets == 24)

    def test_budgets_monotone_in_threshold(self, rng):
        sigmas, colors, deltas = self._make_rays(rng)
        loose, _ = select_sample_budgets(
            sigmas, colors, deltas, [4, 12, 24], threshold=0.1
        )
        strict, _ = select_sample_budgets(
            sigmas, colors, deltas, [4, 12, 24], threshold=0.001
        )
        assert np.all(loose <= strict)

    def test_full_rgb_matches_composite(self, rng):
        sigmas, colors, deltas = self._make_rays(rng)
        _, full_rgb = select_sample_budgets(
            sigmas, colors, deltas, [4, 24], threshold=0.01
        )
        expected, _ = composite(sigmas, colors, deltas, 1.0)
        np.testing.assert_allclose(full_rgb, expected)

    def test_wrong_last_candidate_rejected(self, rng):
        sigmas, colors, deltas = self._make_rays(rng)
        with pytest.raises(ValueError):
            select_sample_budgets(sigmas, colors, deltas, [4, 12], threshold=0.1)

    def test_selected_budget_meets_threshold(self, rng):
        """Invariant: the chosen candidate's difficulty is within delta."""
        from repro.nerf.volume import composite_subsample

        sigmas, colors, deltas = self._make_rays(rng, num_rays=16)
        threshold = 0.05
        budgets, full_rgb = select_sample_budgets(
            sigmas, colors, deltas, [4, 8, 16, 24], threshold=threshold
        )
        for r in range(16):
            if budgets[r] == 24:
                continue
            sub = composite_subsample(
                sigmas[r : r + 1], colors[r : r + 1], deltas[r : r + 1],
                int(budgets[r]),
            )
            rd = rendering_difficulty(full_rgb[r : r + 1], sub)[0]
            assert rd <= threshold + 1e-12
