"""Project documentation stays navigable: the link checker passes.

The CI docs job runs ``tools/check_docs.py`` (link/anchor resolution) and
doctests over the documented ``exec``/``serving`` API; this test keeps
the checker itself honest locally — it must pass on the repository and
must catch planted breakage.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repository_docs_links_resolve(capsys):
    checker = _load_checker()
    assert checker.main(["--root", str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "all links resolve" in out


def test_required_documents_exist():
    for doc in ("README.md", "docs/architecture.md", "examples/README.md"):
        assert (REPO_ROOT / doc).exists(), f"{doc} is part of the doc set"


def test_checker_catches_planted_breakage(tmp_path, capsys):
    checker = _load_checker()
    (tmp_path / "README.md").write_text(
        "# Title\n[missing](nope.md)\n[anchor](#absent)\n", encoding="utf-8"
    )
    assert checker.main(["--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "nope.md" in out and "#absent" in out


def test_github_slugs():
    checker = _load_checker()
    assert checker.github_slug("The FrameTrace IR") == "the-frametrace-ir"
    assert checker.github_slug("Sequences (video workloads)") == (
        "sequences-video-workloads"
    )
