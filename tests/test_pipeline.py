"""Tests for the two-phase ASDR renderer."""

import numpy as np
import pytest

from repro.core.config import (
    ASDRConfig,
    AdaptiveSamplingConfig,
    ApproximationConfig,
)
from repro.core.pipeline import ASDRRenderer
from repro.metrics.image import psnr


class TestPlanning:
    def test_plan_shape(self, trained_model, lego_dataset):
        renderer = ASDRRenderer(trained_model, num_samples=24)
        plan, probe_rgb, counts, probe_points = renderer.plan_sampling(
            lego_dataset.cameras[0]
        )
        assert plan.budgets.shape == (24 * 24,)
        assert len(plan.probe_indices) == len(probe_rgb)
        assert probe_points > 0

    def test_budgets_within_range(self, asdr_result):
        budgets = asdr_result.plan.budgets
        assert budgets.min() >= 1
        assert budgets.max() <= 24

    def test_adaptive_disabled_uniform_budgets(self, trained_model, lego_dataset):
        renderer = ASDRRenderer(
            trained_model,
            config=ASDRConfig(adaptive=None),
            num_samples=24,
        )
        plan, _, _, _ = renderer.plan_sampling(lego_dataset.cameras[0])
        np.testing.assert_array_equal(plan.budgets, np.full(24 * 24, 24))
        assert len(plan.probe_indices) == 0

    def test_adaptive_sampling_saves_points(self, asdr_result):
        assert asdr_result.plan.average_budget < 24
        assert asdr_result.plan.savings > 0.1

    def test_num_candidates_recorded(self, asdr_result):
        assert asdr_result.plan.num_candidates >= 2


class TestRenderImage:
    def test_image_shape(self, asdr_result):
        assert asdr_result.image.shape == (24, 24, 3)

    def test_near_lossless_vs_baseline(self, asdr_result, baseline_result):
        """The paper's headline: ~0.1 dB quality loss (we check >=30 dB
        agreement, i.e. visually indistinguishable)."""
        assert psnr(asdr_result.image, baseline_result.image) > 30.0

    def test_fewer_color_than_density_points(self, asdr_result):
        assert asdr_result.color_points < asdr_result.density_points

    def test_interpolated_points_positive(self, asdr_result):
        assert asdr_result.interpolated_points > 0

    def test_total_flops_below_baseline(self, asdr_result, baseline_result):
        assert asdr_result.total_flops < baseline_result.total_flops

    def test_summary_keys(self, asdr_result):
        summary = asdr_result.summary()
        for key in ("rays", "density_points", "color_points", "total_flops"):
            assert key in summary

    def test_probe_pixels_use_full_render(self, asdr_result):
        probe_counts = asdr_result.sample_counts[asdr_result.plan.probe_indices]
        np.testing.assert_array_equal(probe_counts, np.full(len(probe_counts), 24))


class TestConfigVariants:
    @pytest.fixture(scope="class")
    def camera(self, lego_dataset):
        return lego_dataset.cameras[0]

    def test_zero_threshold_near_exact(self, trained_model, camera, baseline_result):
        config = ASDRConfig(
            adaptive=AdaptiveSamplingConfig(threshold=0.0), approximation=None
        )
        result = ASDRRenderer(trained_model, config=config, num_samples=24).render_image(camera)
        assert psnr(result.image, baseline_result.image) > 45.0

    def test_higher_threshold_fewer_points(self, trained_model, camera):
        strict = ASDRRenderer(
            trained_model,
            config=ASDRConfig(adaptive=AdaptiveSamplingConfig(threshold=1e-4)),
            num_samples=24,
        ).render_image(camera)
        loose = ASDRRenderer(
            trained_model,
            config=ASDRConfig(adaptive=AdaptiveSamplingConfig(threshold=0.05)),
            num_samples=24,
        ).render_image(camera)
        assert loose.density_points <= strict.density_points

    def test_larger_group_fewer_color_evals(self, trained_model, camera):
        results = {}
        for n in (2, 4):
            config = ASDRConfig(adaptive=None, approximation=ApproximationConfig(n))
            results[n] = ASDRRenderer(
                trained_model, config=config, num_samples=24
            ).render_image(camera)
        assert results[4].color_points < results[2].color_points
        assert results[4].density_points == results[2].density_points

    def test_early_termination_reduces_samples(self, trained_model, camera):
        no_et = ASDRRenderer(
            trained_model,
            config=ASDRConfig(adaptive=None, approximation=None),
            num_samples=24,
        ).render_image(camera)
        with_et = ASDRRenderer(
            trained_model,
            config=ASDRConfig(adaptive=None, approximation=None,
                              early_termination=0.99),
            num_samples=24,
        ).render_image(camera)
        assert with_et.density_points < no_et.density_points

    def test_all_disabled_matches_baseline_renderer(
        self, trained_model, camera, baseline_result
    ):
        config = ASDRConfig(adaptive=None, approximation=None)
        result = ASDRRenderer(
            trained_model, config=config, num_samples=24
        ).render_image(camera)
        np.testing.assert_allclose(result.image, baseline_result.image, atol=1e-9)

    def test_works_with_tensorf(self, trained_tensorf, camera):
        result = ASDRRenderer(trained_tensorf, num_samples=24).render_image(camera)
        assert result.image.shape == (24, 24, 3)
        assert result.color_points < result.density_points
