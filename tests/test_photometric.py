"""Tests for photometric training (Eq. 1 backward pass and trainer)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nerf.model import InstantNGPModel
from repro.nerf.photometric import (
    PhotometricConfig,
    composite_backward,
    train_photometric,
)
from repro.nerf.volume import composite
from tests.conftest import TEST_MODEL_CONFIG


class TestCompositeBackward:
    def _setup(self, rng, r=4, n=8):
        sigmas = rng.random((r, n)) * 10
        colors = rng.random((r, n, 3))
        deltas = np.full((r, n), 0.08)
        grad_rgb = rng.normal(size=(r, 3))
        return sigmas, colors, deltas, grad_rgb

    def test_color_gradient_matches_numeric(self, rng):
        sigmas, colors, deltas, grad_rgb = self._setup(rng)
        _, grad_colors = composite_backward(sigmas, colors, deltas, grad_rgb)

        def loss(c):
            rgb, _ = composite(sigmas, c, deltas, 1.0)
            return float(np.sum(rgb * grad_rgb))

        eps = 1e-6
        for (r, i, ch) in [(0, 0, 0), (1, 3, 2), (2, 7, 1)]:
            up = colors.copy()
            up[r, i, ch] += eps
            down = colors.copy()
            down[r, i, ch] -= eps
            numeric = (loss(up) - loss(down)) / (2 * eps)
            assert grad_colors[r, i, ch] == pytest.approx(
                numeric, rel=1e-4, abs=1e-7
            )

    def test_sigma_gradient_matches_numeric(self, rng):
        sigmas, colors, deltas, grad_rgb = self._setup(rng)
        grad_sigmas, _ = composite_backward(sigmas, colors, deltas, grad_rgb)

        def loss(s):
            rgb, _ = composite(s, colors, deltas, 1.0)
            return float(np.sum(rgb * grad_rgb))

        eps = 1e-6
        for (r, i) in [(0, 0), (1, 4), (3, 7)]:
            up = sigmas.copy()
            up[r, i] += eps
            down = sigmas.copy()
            down[r, i] -= eps
            numeric = (loss(up) - loss(down)) / (2 * eps)
            assert grad_sigmas[r, i] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_zero_grad_rgb_zero_gradients(self, rng):
        sigmas, colors, deltas, _ = self._setup(rng)
        gs, gc = composite_backward(sigmas, colors, deltas, np.zeros((4, 3)))
        np.testing.assert_allclose(gs, 0.0, atol=1e-12)
        np.testing.assert_allclose(gc, 0.0, atol=1e-12)


class TestPhotometricTraining:
    def test_config_validation(self):
        with pytest.raises(TrainingError):
            PhotometricConfig(steps=0)

    def test_loss_decreases(self, lego_dataset):
        model = InstantNGPModel(TEST_MODEL_CONFIG, seed=21)
        losses = train_photometric(
            model,
            lego_dataset,
            PhotometricConfig(
                steps=60, rays_per_step=128, num_samples=16,
                num_views=2, reference_samples=64, seed=5,
            ),
        )
        assert len(losses) == 60
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) * 0.8

    def test_deterministic(self, lego_dataset):
        cfg = PhotometricConfig(
            steps=10, rays_per_step=64, num_samples=8,
            num_views=1, reference_samples=32, seed=2,
        )
        l1 = train_photometric(InstantNGPModel(TEST_MODEL_CONFIG, seed=3),
                               lego_dataset, cfg)
        l2 = train_photometric(InstantNGPModel(TEST_MODEL_CONFIG, seed=3),
                               lego_dataset, cfg)
        np.testing.assert_allclose(l1, l2)
