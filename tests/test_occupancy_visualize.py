"""Tests for the occupancy grid and ASCII visualisation helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nerf.occupancy import (
    OccupancyGrid,
    build_occupancy_grid,
    skip_statistics,
)
from repro.utils.visualize import ascii_bars, ascii_heatmap, budget_map_ascii


class TestOccupancyGrid:
    def test_shape_validated(self):
        with pytest.raises(ConfigurationError):
            OccupancyGrid(resolution=4, occupied=np.zeros((4, 4)))

    def test_query_matches_grid(self):
        occupied = np.zeros((4, 4, 4), dtype=bool)
        occupied[2, 1, 3] = True
        grid = OccupancyGrid(4, occupied)
        inside = np.array([[0.6, 0.3, 0.9]])   # voxel (2,1,3)
        outside = np.array([[0.1, 0.1, 0.1]])
        assert grid.query(inside)[0]
        assert not grid.query(outside)[0]

    def test_occupancy_rate(self):
        occupied = np.zeros((4, 4, 4), dtype=bool)
        occupied[0, 0, 0] = True
        assert OccupancyGrid(4, occupied).occupancy_rate == pytest.approx(1 / 64)

    def test_filter_samples_zeroes_empty(self, rng):
        occupied = np.zeros((4, 4, 4), dtype=bool)
        grid = OccupancyGrid(4, occupied)
        points = rng.random((3, 5, 3))
        sigmas = rng.random((3, 5))
        filtered = grid.filter_samples(points, sigmas)
        np.testing.assert_array_equal(filtered, np.zeros((3, 5)))

    def test_invalid_resolution(self, trained_model):
        with pytest.raises(ConfigurationError):
            build_occupancy_grid(trained_model, resolution=1)


class TestBuildFromModel:
    def test_grid_tracks_scene(self, trained_model, lego_dataset, rng):
        grid = build_occupancy_grid(trained_model, resolution=24)
        # Occupied where the analytic scene is dense, empty in corners.
        assert 0.01 < grid.occupancy_rate < 0.9
        dense_pts = rng.random((3000, 3))
        truth = lego_dataset.scene.density(dense_pts) > 5.0
        pred = grid.query(dense_pts)
        # Conservative: almost everything truly dense is marked occupied.
        assert pred[truth].mean() > 0.9

    def test_dilation_grows_occupancy(self, trained_model):
        tight = build_occupancy_grid(trained_model, resolution=16, dilation=0)
        loose = build_occupancy_grid(trained_model, resolution=16, dilation=2)
        assert loose.occupancy_rate >= tight.occupancy_rate

    def test_skip_statistics(self, trained_model, rng):
        grid = build_occupancy_grid(trained_model, resolution=16)
        stats = skip_statistics(grid, rng.random((500, 3)))
        assert stats["total_samples"] == 500
        assert 0.0 <= stats["skip_rate"] <= 1.0
        assert stats["skipped_samples"] == 500 - round(
            500 * (1 - stats["skip_rate"])
        )


class TestAsciiVisuals:
    def test_heatmap_dimensions(self):
        out = ascii_heatmap(np.arange(12.0).reshape(3, 4))
        assert len(out.splitlines()) == 3

    def test_heatmap_monotone_ramp(self):
        out = ascii_heatmap(np.array([[0.0, 1.0]]))
        assert out[0] == " " and out[-1] == "@"

    def test_heatmap_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.arange(5.0))

    def test_heatmap_downsamples_wide_input(self):
        out = ascii_heatmap(np.zeros((100, 200)), width=50)
        assert max(len(l) for l in out.splitlines()) <= 50

    def test_bars_layout(self):
        out = ascii_bars(["enc", "mlp"], [10.0, 5.0], width=10)
        lines = out.splitlines()
        assert lines[0].startswith("enc")
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_budget_map(self, asdr_result):
        out = budget_map_ascii(asdr_result.plan, 24, 24)
        assert len(out.splitlines()) >= 8
