"""Tests for the extension experiments (quantisation / adaptive Gaussian)."""

import pytest

from repro.experiments.harness import run_experiment
from repro.experiments.workbench import Workbench, WorkbenchConfig


@pytest.fixture(scope="module")
def wb(tmp_path_factory):
    cache = tmp_path_factory.mktemp("ext-models")
    return Workbench(
        WorkbenchConfig(
            width=20,
            height=20,
            num_samples=12,
            train_steps=50,
            train_batch=256,
            cache_dir=str(cache),
        )
    )


class TestExtQuant:
    def test_quality_improves_with_bits(self, wb):
        rows = run_experiment("ext_quant", wb, print_output=False)
        by_bits = {r["bits"]: r["psnr_vs_float"] for r in rows}
        assert by_bits[8] > by_bits[4]
        assert by_bits[10] >= by_bits[8] - 1.0

    def test_eight_bits_near_lossless(self, wb):
        """The design's implicit claim: 8-bit cells cost no visible quality."""
        rows = run_experiment("ext_quant", wb, print_output=False)
        by_bits = {r["bits"]: r["psnr_vs_float"] for r in rows}
        assert by_bits[8] > 28.0


class TestExtGaussian:
    def test_savings_reported(self, wb):
        rows = run_experiment("ext_gaussian", wb, print_output=False)
        assert len(rows) == 2
        for row in rows:
            assert row["adaptive_blends"] <= row["full_blends"]
            # Thin structures at this tiny probe scale cost some fidelity;
            # the experiment-scale report uses 56x56 where quality is high.
            assert row["psnr_vs_full"] > 18.0
            assert 0.0 <= row["blend_savings_pct"] <= 100.0
