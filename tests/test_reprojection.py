"""Temporal reprojection: warp geometry, guarded rendering, pricing.

Covers the reprojection contract end to end: the pure-geometry
primitives (forward warp, parallax-sensitivity classification, measured
plan/keyframe overlap), the PSNR-guarded reprojected render with its
accumulated-drift bound, the sequence-level wiring (including the
adaptive keyframe scheduler), and the trace/pricing invariants that keep
reprojected frames inside the engines' bit-identity envelope.
"""

import numpy as np
import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.core.pipeline import ASDRRenderer
from repro.core.reprojection import (
    ReprojectionConfig,
    classify_rays,
    plan_overlap,
    warp_sources,
)
from repro.errors import ConfigurationError, SimulationError
from repro.exec.execution import scalar_engine
from repro.exec.frame_trace import FrameTrace
from repro.scenes.cameras import camera_path
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG


@pytest.fixture(scope="module")
def server_acc():
    return ASDRAccelerator(
        ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


def _cams(frames, arc, size=16):
    return camera_path("orbit", frames, size, size, arc=arc).cameras()


class TestWarpGeometry:
    def test_identity_pose_warps_to_itself(self):
        cam = _cams(1, 0.1)[0]
        src_ids, valid, sensitivity = warp_sources(cam, cam)
        np.testing.assert_array_equal(src_ids, np.arange(16 * 16))
        assert valid.all()
        # The two probe depths project onto the same ray: zero parallax.
        assert np.allclose(sensitivity, 0.0, atol=1e-9)

    def test_sensitivity_grows_with_camera_delta(self):
        near = _cams(2, 0.02)
        far = _cams(2, 0.2)
        _, valid_n, sens_n = warp_sources(near[1], near[0])
        _, valid_f, sens_f = warp_sources(far[1], far[0])
        assert sens_n[valid_n].mean() < sens_f[valid_f].mean()

    def test_invalid_pixels_carry_infinite_sensitivity(self):
        # A quarter-orbit jump: part of the new frame's periphery falls
        # outside the previous camera's frustum at some probed depth.
        cams = _cams(2, 0.5)
        src_ids, valid, sensitivity = warp_sources(cams[1], cams[0])
        assert not valid.all()
        assert np.isinf(sensitivity[~valid]).all()
        # Clamped in range regardless, so fancy indexing stays safe.
        assert src_ids.min() >= 0 and src_ids.max() < 16 * 16

    def test_classification_partitions_every_ray(self):
        sensitivity = np.array([0.1, 0.9, 2.5, 9.0, 0.2])
        valid = np.array([True, True, True, True, False])
        cfg = ReprojectionConfig(converged_px=0.5, refine_px=3.0)
        converged, refinable, fresh = classify_rays(sensitivity, valid, cfg)
        np.testing.assert_array_equal(
            converged, [True, False, False, False, False]
        )
        np.testing.assert_array_equal(
            refinable, [False, True, True, False, False]
        )
        # Invalid rays are always fresh, however small their bound.
        np.testing.assert_array_equal(
            fresh, [False, False, False, True, True]
        )
        assert ((converged ^ refinable ^ fresh)).all()

    def test_plan_overlap_identity_and_decay(self):
        cams = _cams(3, 0.3)
        budgets = 1 + np.arange(16 * 16) % 7
        assert plan_overlap(cams[0], cams[0], budgets) == 1.0
        near = plan_overlap(cams[1], cams[0], budgets)
        far = plan_overlap(cams[2], cams[0], budgets)
        assert far <= near <= 1.0

    def test_plan_overlap_rejects_resolution_mismatch(self):
        cams = _cams(2, 0.1)
        with pytest.raises(ConfigurationError):
            plan_overlap(cams[1], cams[0], np.ones(9))


class TestReprojectionConfig:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            ReprojectionConfig(converged_px=-0.5)
        with pytest.raises(ConfigurationError):
            ReprojectionConfig(converged_px=2.0, refine_px=1.0)
        with pytest.raises(ConfigurationError):
            ReprojectionConfig(refine_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ReprojectionConfig(refine_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ReprojectionConfig(validation_stride=-1)

    def test_cache_key_stable_and_distinct(self):
        a = ReprojectionConfig()
        b = ReprojectionConfig()
        c = ReprojectionConfig(converged_px=0.5)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()


class TestRenderReprojected:
    @pytest.fixture(scope="class")
    def renderer(self, trained_model):
        return ASDRRenderer(trained_model, num_samples=16)

    @pytest.fixture(scope="class")
    def keyframe(self, renderer):
        cams = _cams(2, 0.02)
        return cams, renderer.render_image(cams[0])

    def test_converged_rays_skip_every_wavefront(self, renderer, keyframe):
        cams, base = keyframe
        result = renderer.render_reprojected(
            cams[1], base.plan, cams[0], base.image, ReprojectionConfig()
        )
        rec = result.reprojection
        assert rec["reprojected"] > 0 and not rec["fallback"]
        assert result.trace.reprojected_pixels == rec["reprojected"]
        marched = np.concatenate(
            [wf.ray_ids for wf in result.trace.wavefronts]
        )
        # Every ray is either marched exactly once or warped, never both.
        assert len(marched) == len(np.unique(marched))
        assert len(marched) + rec["reprojected"] == 16 * 16
        # Warped pixels are delivered, so scan-out sees the full frame.
        assert result.trace.rendered_pixels == 16 * 16

    def test_guard_fallback_degenerates_to_plan_reuse(
        self, renderer, keyframe
    ):
        cams, base = keyframe
        strict = ReprojectionConfig(min_psnr=1000.0, validation_stride=4)
        result = renderer.render_reprojected(
            cams[1], base.plan, cams[0], base.image, strict
        )
        assert result.reprojection["fallback"]
        assert result.trace.reprojected_pixels == 0
        reused = renderer.render_with_plan(cams[1], base.plan)
        np.testing.assert_array_equal(result.image, reused.image)

    def test_accumulated_sensitivity_bounds_chained_warps(
        self, renderer, keyframe
    ):
        cams, base = keyframe
        cfg = ReprojectionConfig()
        first = renderer.render_reprojected(
            cams[1], base.plan, cams[0], base.image, cfg
        )
        accum = first.reprojection["accum"]
        # Warped rays carry their drift bound; rendered rays reset to 0.
        assert (accum > 0).sum() == first.reprojection["reprojected"]
        # A saturated accumulator pushes every ray past converged_px, so
        # nothing warps and the returned accumulator fully resets.
        saturated = renderer.render_reprojected(
            cams[1],
            base.plan,
            cams[0],
            base.image,
            cfg,
            accum_sens=np.full(16 * 16, 100.0),
        )
        assert saturated.reprojection["reprojected"] == 0
        assert (saturated.reprojection["accum"] == 0).all()

    def test_shape_mismatches_rejected(self, renderer, keyframe):
        cams, base = keyframe
        cfg = ReprojectionConfig()
        other = _cams(1, 0.02, size=24)[0]
        with pytest.raises(ConfigurationError):
            renderer.render_reprojected(
                other, base.plan, cams[0], base.image, cfg
            )
        with pytest.raises(ConfigurationError):
            renderer.render_reprojected(
                cams[1], base.plan, cams[0], base.image[:4, :4], cfg
            )
        with pytest.raises(ConfigurationError):
            renderer.render_reprojected(
                cams[1], base.plan, cams[0], base.image, cfg,
                accum_sens=np.zeros(9),
            )


class TestSequenceReprojection:
    @pytest.fixture(scope="class")
    def renderer(self, trained_model):
        return ASDRRenderer(trained_model, num_samples=16)

    def test_reprojected_sequence_prices_cheaper(self, renderer, server_acc):
        cams = _cams(3, 0.02)
        plain = renderer.render_sequence(cams, probe_interval=0)
        warped = renderer.render_sequence(
            cams, probe_interval=0, reproject=ReprojectionConfig()
        )
        assert any(
            f.reprojected_pixels for f in warped.trace.frames[1:]
        )
        # The accumulator is sequence-internal state, not part of the
        # per-frame record the experiments consume.
        for result in warped.results[1:]:
            assert "accum" not in result.reprojection
        plain_rep = server_acc.simulate_sequence(plain.trace, group_size=2)
        warped_rep = server_acc.simulate_sequence(warped.trace, group_size=2)
        assert warped_rep.total_cycles < plain_rep.total_cycles

    def test_adaptive_overlap_drives_reprobing(self, renderer):
        # Identical poses keep the measured overlap at 1.0 — even the
        # strictest threshold never re-probes.
        held = camera_path("orbit", 2, 16, 16, hold=2).cameras()
        seq = renderer.render_sequence(
            held,
            probe_interval=0,
            reuse_poses=False,
            reproject=ReprojectionConfig(),
            adaptive_overlap=1.0,
        )
        assert seq.trace.planned == [True, False]
        assert seq.results[1].reprojection["overlap"] == 1.0
        # A violent pose change collapses the overlap and forces Phase I.
        cut = _cams(2, 0.9)
        seq = renderer.render_sequence(
            cut,
            probe_interval=0,
            reproject=ReprojectionConfig(),
            adaptive_overlap=0.9,
        )
        assert seq.trace.planned == [True, True]

    def test_adaptive_overlap_validated(self, renderer):
        cams = _cams(2, 0.02)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                renderer.render_sequence(cams, adaptive_overlap=bad)


class TestReprojectedTracePricing:
    def _budget_trace(self, size=12):
        camera = _cams(1, 0.1, size=size)[0]
        budgets = 1 + (np.arange(size * size) % 5) * 2
        return FrameTrace.from_budgets(camera, budgets.astype(np.int64))

    def test_with_reprojection_keeps_scanout_and_drops_compute(
        self, server_acc
    ):
        full = self._budget_trace()
        mask = np.zeros(full.num_pixels, dtype=bool)
        mask[::2] = True
        warped = full.with_reprojection(mask)
        assert warped.rendered_pixels == full.rendered_pixels
        assert warped.reprojected_pixels > 0
        assert warped.density_points < full.density_points
        full_rep = server_acc.simulate_trace(full)
        warped_rep = server_acc.simulate_trace(warped)
        assert warped_rep.total_cycles < full_rep.total_cycles
        assert warped_rep.bus_cycles <= full_rep.bus_cycles

    def test_with_reprojection_rejects_bad_mask(self):
        full = self._budget_trace()
        with pytest.raises(SimulationError):
            full.with_reprojection(np.zeros(7, dtype=bool))

    def test_serialisation_round_trips_reprojected_pixels(self):
        full = self._budget_trace()
        mask = np.zeros(full.num_pixels, dtype=bool)
        mask[:10] = True
        warped = full.with_reprojection(mask)
        assert "reprojected_pixels" not in full.to_dict()
        data = warped.to_dict()
        assert data["reprojected_pixels"] == warped.reprojected_pixels
        rebuilt = FrameTrace.from_dict(data)
        assert rebuilt.reprojected_pixels == warped.reprojected_pixels
        assert rebuilt.rendered_pixels == warped.rendered_pixels

    def test_engines_bit_identical_on_reprojected_trace(self, server_acc):
        full = self._budget_trace()
        mask = np.zeros(full.num_pixels, dtype=bool)
        mask[1::3] = True
        warped = full.with_reprojection(mask)

        def observables(report):
            return (
                report.total_cycles,
                report.bus_cycles,
                report.encoding.cycles,
                report.mlp.cycles,
                report.render.cycles,
                tuple(sorted(report.energy_by_component.items())),
            )

        with scalar_engine():
            mono = server_acc.simulate_trace(warped)
            ex = server_acc.trace_execution(warped)
            while not ex.done:
                ex.step()
            stepped = ex.finish()
        batched_ex = server_acc.trace_execution(warped)
        while not batched_ex.done:
            batched_ex.run(max_steps=3)
        batched = batched_ex.finish()
        assert observables(mono) == observables(stepped)
        assert observables(stepped) == observables(batched)
