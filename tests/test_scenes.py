"""Tests for analytic scenes, cameras and datasets."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SceneError
from repro.scenes.analytic import AnalyticScene, make_scene, scene_names
from repro.scenes.cameras import Camera, look_at_pose, orbit_cameras
from repro.scenes.dataset import load_dataset, render_analytic


class TestSceneRegistry:
    def test_ten_scenes(self):
        assert len(scene_names()) == 10

    def test_paper_scene_names_present(self):
        expected = {"palace", "fountain", "family", "fox", "mic",
                    "lego", "hotdog", "ficus", "chair", "ship"}
        assert set(scene_names()) == expected

    def test_unknown_scene_raises(self):
        with pytest.raises(SceneError):
            make_scene("does-not-exist")

    @pytest.mark.parametrize("name", scene_names())
    def test_every_scene_builds(self, name):
        scene = make_scene(name)
        assert scene.name == name


class TestSceneFields:
    @pytest.mark.parametrize("name", ["lego", "mic", "palace"])
    def test_density_nonnegative_bounded(self, name, rng):
        scene = make_scene(name)
        pts = rng.random((500, 3))
        sigma = scene.density(pts)
        assert np.all(sigma >= 0)
        assert np.all(sigma <= scene.sigma_max + 1e-9)

    @pytest.mark.parametrize("name", ["lego", "ship", "fox"])
    def test_colors_in_unit_range(self, name, rng):
        scene = make_scene(name)
        pts = rng.random((200, 3))
        dirs = rng.normal(size=(200, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        colors = scene.color(pts, dirs)
        assert colors.shape == (200, 3)
        assert np.all(colors >= 0) and np.all(colors <= 1)

    def test_scene_has_empty_space(self, rng):
        """Adaptive sampling relies on background: some region must be empty."""
        scene = make_scene("mic")
        corner = rng.random((200, 3)) * 0.05  # near the cube corner
        assert np.mean(scene.density(corner)) < 1.0

    def test_scene_has_occupied_space(self):
        scene = make_scene("mic")
        center = np.array([[0.5, 0.67, 0.5]])  # mic head
        assert scene.density(center)[0] > scene.sigma_max * 0.5

    def test_density_deterministic(self, rng):
        scene = make_scene("ficus")
        pts = rng.random((50, 3))
        np.testing.assert_array_equal(scene.density(pts), scene.density(pts))

    def test_view_dependence(self):
        """Specular shading must make color depend on direction."""
        scene = make_scene("mic")
        pts = np.tile([[0.5, 0.785, 0.5]], (2, 1))  # on the mic head surface
        dirs = np.array([[0, 0, -1.0], [0.7, -0.7, 0.0]])
        c = scene.color(pts, dirs)
        assert not np.allclose(c[0], c[1])


class TestCamera:
    def test_invalid_resolution_rejected(self):
        with pytest.raises(ConfigurationError):
            Camera(0, 10, 10.0, np.eye(4))

    def test_invalid_focal_rejected(self):
        with pytest.raises(ConfigurationError):
            Camera(10, 10, -1.0, np.eye(4))

    def test_invalid_pose_rejected(self):
        with pytest.raises(ConfigurationError):
            Camera(10, 10, 10.0, np.eye(3))

    def test_pixel_rays_shape_and_norm(self):
        cam = Camera(8, 6, 10.0, look_at_pose((2, 2, 2), (0.5, 0.5, 0.5)))
        origins, dirs = cam.pixel_rays()
        assert origins.shape == (48, 3)
        np.testing.assert_allclose(np.linalg.norm(dirs, axis=-1), 1.0)

    def test_rays_for_pixels_matches_full(self):
        cam = Camera(8, 6, 10.0, look_at_pose((2, 2, 2), (0.5, 0.5, 0.5)))
        origins, dirs = cam.pixel_rays()
        sub_o, sub_d = cam.rays_for_pixels(np.array([0, 7, 25, 47]))
        np.testing.assert_allclose(sub_d, dirs[[0, 7, 25, 47]])
        np.testing.assert_allclose(sub_o, origins[[0, 7, 25, 47]])

    def test_look_at_points_toward_target(self):
        pose = look_at_pose((2, 0.5, 0.5), (0.5, 0.5, 0.5))
        backward = pose[:3, 2]
        to_target = np.array([0.5, 0.5, 0.5]) - pose[:3, 3]
        cos = to_target @ (-backward) / np.linalg.norm(to_target)
        assert cos == pytest.approx(1.0)

    def test_orbit_count_and_radius(self):
        cams = orbit_cameras(6, 16, 16, radius=1.5)
        assert len(cams) == 6
        center = np.array([0.5, 0.5, 0.5])
        for cam in cams:
            horizontal = cam.position - center
            assert np.hypot(horizontal[0], horizontal[2]) == pytest.approx(1.5)

    def test_orbit_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            orbit_cameras(0, 16, 16)


class TestDataset:
    def test_load_dataset(self):
        ds = load_dataset("chair", width=16, height=12, num_views=3)
        assert ds.name == "chair"
        assert len(ds.cameras) == 3
        assert ds.cameras[0].width == 16

    def test_reference_image_shape_range(self, lego_dataset):
        ref = lego_dataset.reference_image(0, num_samples=64)
        assert ref.shape == (24, 24, 3)
        assert np.all(ref >= 0) and np.all(ref <= 1)

    def test_reference_cached(self, lego_dataset):
        a = lego_dataset.reference_image(0, num_samples=64)
        b = lego_dataset.reference_image(0, num_samples=64)
        assert a is b

    def test_reference_has_content(self, lego_dataset):
        """The render must show the object (not a uniform background)."""
        ref = lego_dataset.reference_image(0, num_samples=64)
        assert ref.std() > 0.02

    def test_render_analytic_views_differ(self):
        ds = load_dataset("lego", width=16, height=16, num_views=4)
        a = render_analytic(ds.scene, ds.cameras[0], num_samples=48)
        b = render_analytic(ds.scene, ds.cameras[2], num_samples=48)
        assert not np.allclose(a, b)
