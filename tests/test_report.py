"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.experiments.harness import EXPERIMENTS
from repro.experiments.report import PAPER_REFERENCE, generate_report
from repro.experiments.workbench import Workbench, WorkbenchConfig


@pytest.fixture(scope="module")
def tiny_wb(tmp_path_factory):
    cache = tmp_path_factory.mktemp("report-models")
    return Workbench(
        WorkbenchConfig(
            width=20,
            height=20,
            num_samples=12,
            train_steps=40,
            train_batch=256,
            cache_dir=str(cache),
        )
    )


class TestPaperReference:
    def test_every_paper_artifact_has_reference(self):
        """All fig*/table* experiments carry quoted paper values (repo
        extensions like ``ext_*`` and ``video`` quote nothing)."""
        for exp_id in EXPERIMENTS:
            if not exp_id.startswith(("fig", "table")):
                continue
            assert exp_id in PAPER_REFERENCE, exp_id

    def test_references_nonempty(self):
        for exp_id, text in PAPER_REFERENCE.items():
            assert len(text) > 20, exp_id


class TestGenerateReport:
    def test_subset_report(self, tiny_wb, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        text = generate_report(
            str(path), tiny_wb, experiment_ids=["fig5", "fig13", "table2"]
        )
        assert path.exists()
        assert "## fig5" in text
        assert "## fig13" in text
        assert "## table2" in text
        assert "**Paper:**" in text
        assert "**Measured:**" in text

    def test_report_contains_scale_note(self, tiny_wb, tmp_path):
        path = tmp_path / "r.md"
        text = generate_report(str(path), tiny_wb, experiment_ids=["table2"])
        assert "20x20" in text
