"""Tests for storage-utilisation analysis (Figure 13)."""

import numpy as np
import pytest

from repro.cim.mapping import (
    average_utilization,
    hybrid_utilization,
    storage_utilization,
)
from repro.nerf.hashgrid import HashGridConfig

GRID = HashGridConfig(
    num_levels=8, table_size=2**13, base_resolution=8, max_resolution=128
)


class TestStorageUtilization:
    def test_low_res_levels_waste_storage(self):
        util = storage_utilization(GRID)
        # Level 0: 9^3 = 729 of 8192 entries used (minus hash collisions).
        assert util[0] == pytest.approx(729 / 8192, rel=0.06)

    def test_high_res_levels_nearly_full(self):
        util = storage_utilization(GRID)
        assert util[-1] > 0.9

    def test_monotone_in_resolution(self):
        util = storage_utilization(GRID)
        assert all(b >= a - 1e-9 for a, b in zip(util, util[1:]))

    def test_values_in_unit_range(self):
        for u in storage_utilization(GRID):
            assert 0 <= u <= 1


class TestHybridUtilization:
    def test_improves_low_res_levels(self):
        orig = storage_utilization(GRID)
        hybrid = hybrid_utilization(GRID)
        assert hybrid[0] > orig[0] * 5

    def test_high_res_levels_unchanged(self):
        orig = storage_utilization(GRID)
        hybrid = hybrid_utilization(GRID)
        assert hybrid[-1] == pytest.approx(orig[-1])

    def test_average_improvement_matches_paper_shape(self):
        """Paper Figure 13: 62.2% -> 85.95%; we require a clear jump."""
        orig = average_utilization(storage_utilization(GRID))
        hybrid = average_utilization(hybrid_utilization(GRID))
        assert hybrid > orig + 0.15
        assert hybrid > 0.75

    def test_values_in_unit_range(self):
        for u in hybrid_utilization(GRID):
            assert 0 <= u <= 1


class TestAverage:
    def test_average_empty(self):
        assert average_utilization([]) == 0.0

    def test_average_simple(self):
        assert average_utilization([0.0, 1.0]) == pytest.approx(0.5)
