"""Tests for the Instant-NGP model and spherical harmonics."""

import numpy as np
import pytest

from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.model import InstantNGPConfig, InstantNGPModel
from repro.nerf.spherical import SH_DIM, sh_encode
from tests.conftest import TEST_MODEL_CONFIG


class TestSphericalHarmonics:
    def test_shape(self, rng):
        dirs = rng.normal(size=(7, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        assert sh_encode(dirs).shape == (7, SH_DIM)

    def test_constant_band(self, rng):
        dirs = rng.normal(size=(5, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        out = sh_encode(dirs)
        np.testing.assert_allclose(out[:, 0], 0.28209479177387814)

    def test_orthogonality(self, rng):
        """SH basis functions are orthonormal under the sphere measure."""
        n = 40000
        dirs = rng.normal(size=(n, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        basis = sh_encode(dirs)
        gram = basis.T @ basis * (4 * np.pi / n)
        np.testing.assert_allclose(gram, np.eye(SH_DIM), atol=0.15)

    def test_direction_sensitivity(self):
        a = sh_encode(np.array([[0.0, 0.0, 1.0]]))
        b = sh_encode(np.array([[1.0, 0.0, 0.0]]))
        assert not np.allclose(a, b)


class TestInstantNGPModel:
    def test_query_density_shapes(self, rng):
        model = InstantNGPModel(TEST_MODEL_CONFIG, seed=0)
        sigma, geo = model.query_density(rng.random((12, 3)))
        assert sigma.shape == (12,)
        assert geo.shape == (12, TEST_MODEL_CONFIG.geo_feature_dim)

    def test_density_nonnegative(self, rng):
        model = InstantNGPModel(TEST_MODEL_CONFIG, seed=0)
        sigma, _ = model.query_density(rng.random((50, 3)))
        assert np.all(sigma >= 0)

    def test_query_color_in_unit_range(self, rng):
        model = InstantNGPModel(TEST_MODEL_CONFIG, seed=0)
        _, geo = model.query_density(rng.random((10, 3)))
        dirs = rng.normal(size=(10, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        rgb = model.query_color(geo, dirs)
        assert rgb.shape == (10, 3)
        assert np.all((rgb >= 0) & (rgb <= 1))

    def test_query_combines(self, rng):
        model = InstantNGPModel(TEST_MODEL_CONFIG, seed=0)
        pts = rng.random((6, 3))
        dirs = rng.normal(size=(6, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        sigma, rgb = model.query(pts, dirs)
        sigma2, geo = model.query_density(pts)
        np.testing.assert_allclose(sigma, sigma2)
        np.testing.assert_allclose(rgb, model.query_color(geo, dirs))

    def test_flop_split_matches_paper_shape(self):
        """Default config: density ~8% / color ~92% of MLP FLOPs (Sec. 3)."""
        model = InstantNGPModel(InstantNGPConfig())
        density = model.flops_density_per_point()
        color = model.flops_color_per_point()
        share = density / (density + color)
        assert 0.04 < share < 0.15

    def test_embedding_flops_small_share(self):
        model = InstantNGPModel(InstantNGPConfig())
        emb = model.flops_embedding_per_point()
        total = emb + model.flops_density_per_point() + model.flops_color_per_point()
        assert emb / total < 0.1

    def test_bytes_embedding(self):
        cfg = InstantNGPConfig(
            grid=HashGridConfig(num_levels=4, feature_dim=2, table_size=2**10,
                                base_resolution=4, max_resolution=32)
        )
        model = InstantNGPModel(cfg)
        assert model.bytes_embedding_per_point() == 4 * 8 * 2 * 2

    def test_parameter_count_positive(self):
        model = InstantNGPModel(TEST_MODEL_CONFIG)
        assert model.parameter_count() > TEST_MODEL_CONFIG.grid.table_size

    def test_deterministic_by_seed(self, rng):
        pts = rng.random((5, 3))
        a = InstantNGPModel(TEST_MODEL_CONFIG, seed=2).query_density(pts)[0]
        b = InstantNGPModel(TEST_MODEL_CONFIG, seed=2).query_density(pts)[0]
        np.testing.assert_array_equal(a, b)
