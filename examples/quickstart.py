"""Quickstart: distill a scene, render it with and without ASDR.

Runs in under a minute on a laptop.  Shows the core loop of the library:
build a scene, distill it into an Instant-NGP model, render with the
fixed-budget baseline and with ASDR's adaptive two-phase pipeline, and
compare quality and work.

Usage::

    python examples/quickstart.py [scene]
"""

import sys
import time

from repro import (
    ASDRRenderer,
    BaselineRenderer,
    InstantNGPConfig,
    InstantNGPModel,
    HashGridConfig,
    TrainingConfig,
    distill_scene,
    load_dataset,
    psnr,
)


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "lego"
    print(f"Scene: {scene_name}")

    dataset = load_dataset(scene_name, width=56, height=56)
    config = InstantNGPConfig(
        grid=HashGridConfig(
            num_levels=8, table_size=2**13, base_resolution=8, max_resolution=128
        ),
        density_hidden_dim=32,
        color_hidden_dim=64,
        color_num_hidden=3,
    )
    model = InstantNGPModel(config, seed=0)

    print("Distilling the analytic scene into the hash-grid model ...")
    t0 = time.time()
    losses = distill_scene(
        model, dataset.scene, TrainingConfig(steps=250, batch_size=1024)
    )
    print(f"  {len(losses)} steps in {time.time() - t0:.1f}s, "
          f"loss {losses[0]:.3f} -> {losses[-1]:.4f}")

    camera = dataset.cameras[0]
    reference = dataset.reference_image(0, num_samples=192)

    baseline = BaselineRenderer(model, num_samples=48).render_image(camera)
    asdr = ASDRRenderer(model, num_samples=48).render_image(camera)

    print("\n                    baseline      ASDR")
    print(f"PSNR vs ground truth  {psnr(baseline.image, reference):8.2f}  "
          f"{psnr(asdr.image, reference):8.2f}")
    print(f"points per pixel      {baseline.points_total / baseline.num_rays:8.1f}  "
          f"{asdr.average_samples_per_ray:8.1f}")
    print(f"color MLP evals       {baseline.color_points:8d}  {asdr.color_points:8d}")
    print(f"total GFLOPs          {baseline.total_flops / 1e9:8.2f}  "
          f"{asdr.total_flops / 1e9:8.2f}")
    print(f"\nASDR vs baseline PSNR (lossless-ness): "
          f"{psnr(asdr.image, baseline.image):.2f} dB")


if __name__ == "__main__":
    main()
