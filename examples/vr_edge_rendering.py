"""Edge/VR deployment study: ASDR-Edge vs Jetson Xavier NX.

The paper's motivation: VR/AR needs 120 Hz under a ~30 W power envelope,
which neither edge GPUs nor desktop GPUs deliver on NeRF workloads.  This
example renders a scene, prices the same workload on the Xavier NX roofline
and on the simulated ASDR-Edge accelerator, and reports frame rate and
energy per frame for both.

Usage::

    python examples/vr_edge_rendering.py [scene]
"""

import sys

from repro import ASDRRenderer, BaselineRenderer
from repro.arch import ASDRAccelerator, ArchConfig
from repro.baselines import GPUModel, NeurexModel, NEUREX_EDGE, Workload, XAVIER_NX
from repro.experiments import Workbench


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "fox"
    wb = Workbench()
    print(f"Scene: {scene} ({wb.config.width}x{wb.config.height}, "
          f"{wb.config.num_samples} samples full budget)")

    model = wb.model(scene)
    camera = wb.dataset(scene).cameras[0]
    baseline = wb.baseline_render(scene)
    asdr_result = wb.asdr_render(scene)

    workload = Workload.from_render_result(baseline, model)
    xavier = GPUModel(XAVIER_NX).run(workload)
    neurex = NeurexModel(NEUREX_EDGE).run(workload)

    accelerator = ASDRAccelerator(
        ArchConfig.edge(),
        model.config.grid,
        model.config.density_mlp_config,
        model.config.color_mlp_config,
    )
    asdr = accelerator.simulate_render(camera, asdr_result, group_size=2)

    print(f"\n{'platform':>12s} {'ms/frame':>10s} {'fps':>8s} {'mJ/frame':>10s}")
    for name, t, e in (
        ("Xavier NX", xavier.time_seconds, xavier.energy_joules),
        ("NeuRex-Edge", neurex.time_seconds, neurex.energy_joules),
        ("ASDR-Edge", asdr.time_seconds, asdr.energy_joules),
    ):
        print(f"{name:>12s} {t * 1e3:10.3f} {1.0 / t:8.0f} {e * 1e3:10.4f}")

    print(f"\nASDR-Edge speedup over Xavier NX: "
          f"{xavier.time_seconds / asdr.time_seconds:.1f}x "
          f"(paper reports 49.61x average at full 800x800 scale)")
    print(f"Register-cache hit rate: {asdr.encoding.cache_hit_rate:.1%}, "
          f"conflict cycles: {asdr.encoding.conflict_cycles}")


if __name__ == "__main__":
    main()
