"""Design-space exploration: sweep ASDR's algorithm knobs on one scene.

An architect's workflow: for a target scene, sweep the adaptive-sampling
threshold ``delta`` and the approximation group size ``n``, and view the
quality/performance frontier on the simulated server accelerator — the
study behind the paper's Figure 21.

Usage::

    python examples/design_space_exploration.py [scene]
"""

import sys

from repro import (
    ASDRConfig,
    ASDRRenderer,
    AdaptiveSamplingConfig,
    ApproximationConfig,
    psnr,
)
from repro.arch import ASDRAccelerator, ArchConfig
from repro.experiments import Workbench
from repro.experiments.workbench import EXPERIMENT_GRID, EXPERIMENT_MODEL


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "lego"
    wb = Workbench()
    model = wb.model(scene)
    camera = wb.dataset(scene).cameras[0]
    reference = wb.reference(scene)
    accelerator = ASDRAccelerator(
        ArchConfig.server(),
        EXPERIMENT_GRID,
        EXPERIMENT_MODEL.density_mlp_config,
        EXPERIMENT_MODEL.color_mlp_config,
    )

    print(f"Scene: {scene}\n")
    print(f"{'delta':>12s} {'n':>3s} {'avg pts':>8s} {'PSNR':>7s} "
          f"{'cycles':>10s} {'ms':>8s}")

    base_cycles = None
    for delta in (0.0, 1.0 / 2048.0, 1.0 / 256.0):
        for n in (1, 2, 4):
            config = ASDRConfig(
                adaptive=AdaptiveSamplingConfig(threshold=delta),
                approximation=ApproximationConfig(n) if n > 1 else None,
            )
            renderer = ASDRRenderer(
                model, config=config, num_samples=wb.config.num_samples
            )
            result = renderer.render_image(camera)
            report = accelerator.simulate_render(camera, result, group_size=n)
            if base_cycles is None:
                base_cycles = report.total_cycles
            print(f"{delta:12.6f} {n:3d} {result.average_samples_per_ray:8.1f} "
                  f"{psnr(result.image, reference):7.2f} {report.total_cycles:10d} "
                  f"{report.time_seconds * 1e3:8.3f}")

    print("\nLower delta / higher n trade quality for speed; the paper "
          "selects delta=1/2048, n=2 as near-lossless.")


if __name__ == "__main__":
    main()
