"""Multi-tenant serving study: three viewers share one accelerator.

The serving-layer sibling of ``vr_edge_rendering.py``: instead of one
headset against one edge chip, a small fleet of clients streams sequences
from one simulated server accelerator.  The mix is deliberately
overlapping — an orbit viewer, a hand-held (shaky) viewer whose first
pose matches the orbit's, and a second orbit viewer watching the same
content — so every sharing lever fires: cross-client content replay,
per-tenant temporal-cache partitions, and memoised twin traces.

Each scheduling policy (FIFO = back-to-back, round-robin fair share,
deadline/quality-aware) serves the same mix; the study prints per-client
delivery latency, the aggregate cycles next to the back-to-back
reference, and Jain fairness over per-client slowdowns.

Usage::

    python examples/multi_tenant_serving.py [scene]
"""

import sys

from repro.experiments.serving import default_client_mix, serve_reports
from repro.experiments.workbench import Workbench
from repro.serving.policies import POLICY_NAMES


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "palace"
    wb = Workbench()
    requests = default_client_mix(scene=scene)
    print(f"Scene: {scene}, {len(requests)} clients, "
          f"{requests[0].path.frames} frames each at "
          f"{requests[0].path.width}x{requests[0].path.height}")
    for request in requests:
        print(f"  {request.client_id}: {request.path.preset} path")

    reports = serve_reports(wb, requests)

    b2b = reports["fifo"].back_to_back_cycles
    print(f"\nback-to-back reference: {b2b / 1e3:.1f} kcycles "
          f"(each client simulated alone, summed)")
    print(f"\n{'policy':>12s} {'kcycles':>9s} {'saved':>7s} "
          f"{'fairness':>9s} {'worst p95':>10s}")
    for name in POLICY_NAMES:
        report = reports[name]
        worst_p95 = max(c.latency_percentile(95) for c in report.clients)
        print(f"{name:>12s} {report.busy_cycles / 1e3:9.1f} "
              f"{100 * report.sharing_saving:6.1f}% "
              f"{report.fairness:9.3f} "
              f"{worst_p95 / report.clock_hz * 1e3:9.3f}ms")

    deadline = reports["deadline"]
    print("\nper-client delivery (deadline-aware policy):")
    for client in deadline.clients:
        print(f"  {client.client_id}: {client.frames} frames "
              f"({client.mode_mix}), p50 "
              f"{client.latency_percentile(50) / deadline.clock_hz * 1e3:.3f} ms, "
              f"slowdown {client.slowdown:.2f}x vs running alone")
    print("\nmodes: p = Phase I probe, r = plan reuse, x = pose replay, "
          "+Nc = frames served from another client's executed content")


if __name__ == "__main__":
    main()
