"""Cluster serving study: a twin-heavy mix across a two-shard fleet.

The fleet-level sibling of ``multi_tenant_serving.py``: instead of every
tenant sharing one box, six viewers — four trajectory recipes cycled, so
``fan{i}`` and ``fan{i+4}`` watch identical content — are routed across
two simulated server accelerators.  Placement is the whole game: the
serving layer's sharing levers (cross-client scan-out replay, the
temporal vertex cache) only fire between tenants on the *same* shard, so
the content-affinity router delivers each twin pair's second stream at
scan-out cost while the placement-blind hash router re-executes it on
the other box.

The study prints the placement each router chose, the per-shard
occupancy, and the fleet aggregates side by side — the aggregate-cycle
gap between ``affinity`` and ``random`` is the value of content-aware
placement.  It closes with a mid-sequence migration: one tenant's tail
moves to the other shard, once carrying its temporal-cache partition
(hand-off) and once restarting cold.

Usage::

    python examples/cluster_serving.py [scene]
"""

import sys

from repro.experiments.cluster import twin_heavy_mix
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.serving.cluster import ClusterServer, Migration

POLICY = "round_robin_preemptive"


def build_cluster(wb, requests, router):
    cluster = ClusterServer(
        [experiment_accelerator("server") for _ in range(2)],
        router=router,
        group_size=wb.group_size(),
    )
    for request in requests:
        cluster.submit(request, wb.client_sequence(request))
    return cluster


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "palace"
    wb = Workbench()
    requests = twin_heavy_mix(scene=scene)
    print(f"Scene: {scene}, {len(requests)} clients on 2 shards, "
          f"{requests[0].path.frames} frames each at "
          f"{requests[0].path.width}x{requests[0].path.height}")
    print("twins: fan0=fan4, fan1=fan5 (same path -> one rendered "
          "sequence, two viewers)")

    reports = {}
    for router in ("affinity", "random"):
        cluster = build_cluster(wb, requests, router)
        placement = {
            name: sorted(
                cid for cid in (r.client_id for r in requests)
                if cluster.placement_of(cid) == name
            )
            for name in cluster.shard_names
        }
        print(f"\n{router} placement:")
        for name, ids in placement.items():
            print(f"  {name}: {', '.join(ids) or '(idle)'}")
        reports[router] = cluster.serve(POLICY)

    print(f"\n{'router':>9s} {'fleet kcycles':>14s} {'fairness':>9s} "
          f"{'p95':>9s}  per-shard busy")
    for router, report in reports.items():
        shards = " + ".join(
            f"{u.busy_cycles / 1e3:.1f}" for u in report.utilisations
        )
        print(f"{router:>9s} {report.total_busy_cycles / 1e3:14.1f} "
              f"{report.fairness:9.3f} "
              f"{report.latency_percentile_ms(95):8.3f}ms  {shards} kc")
    gap = (
        reports["affinity"].total_busy_cycles
        / reports["random"].total_busy_cycles
    )
    print(f"\ncontent-affinity placement: {gap:.2f}x the hash router's "
          f"aggregate cycles for the same {reports['affinity'].total_frames} "
          f"delivered frames")

    # Mid-sequence migration: move fan0's tail to the other shard.
    cluster = build_cluster(wb, requests, "affinity")
    src = cluster.placement_of("fan0")
    dst = next(n for n in cluster.shard_names if n != src)
    half = requests[0].path.frames // 2
    print(f"\nmigrating fan0 {src} -> {dst} after frame {half}:")
    for handoff, label in ((True, "temporal-cache hand-off"),
                           (False, "cold restart")):
        report = cluster.serve(
            POLICY, [Migration("fan0", half, dst, handoff=handoff)]
        )
        record = report.migrations[0]
        print(f"  {label:24s}: fleet {report.total_busy_cycles / 1e3:.1f} "
              f"kcycles, tail arrives on {record['to']} at cycle "
              f"{record['tail_arrival_cycle']}")


if __name__ == "__main__":
    main()
