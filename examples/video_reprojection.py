"""Video study: temporal reprojection + adaptive keyframe scheduling.

Plan reuse alone leaves video MLP-bound — every non-keyframe still
marches every ray, just at a pre-measured budget.  This study shows the
two levers that break that floor:

* **Temporal reprojection** warps the previous frame's delivered pixels
  along the camera delta; rays whose accumulated parallax sensitivity
  stays under the converged threshold are reused at scan-out cost and
  never touch the MLP (PSNR-guarded, so quality cannot silently drop).
  A slow orbit is priced three ways — fresh per frame, plain plan
  reuse, reprojection armed.
* **Adaptive keyframing** replaces the fixed Phase I cadence with the
  measured plan/keyframe ray-budget overlap.  On an orbit broken by a
  hard camera cut, the fixed scheduler probes on a clock (and renders
  the cut from a stale plan) while the adaptive scheduler re-probes
  exactly where the measurement collapses — fewer probes, no worse
  quality.

Usage::

    python examples/video_reprojection.py [scene]
"""

import sys

import numpy as np

from repro.core.config import ASDRConfig
from repro.core.pipeline import ASDRRenderer
from repro.core.reprojection import ReprojectionConfig
from repro.experiments.video import (
    BENCH_ARC,
    BENCH_OVERLAP,
    _clamped_psnr,
    _cut_cameras,
)
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.metrics.image import psnr
from repro.scenes.cameras import camera_path

FRAMES = 6
SIZE = 16


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "palace"
    wb = Workbench()
    cfg = ReprojectionConfig(converged_px=0.75)
    acc = experiment_accelerator("server")
    path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=BENCH_ARC)
    print(f"Scene: {scene}, {FRAMES}-frame {SIZE}x{SIZE} orbit "
          f"(arc {BENCH_ARC})")

    # One orbit, three pipelines.
    fresh = wb.sequence_render(scene, path, probe_interval=1,
                               reuse_poses=False)
    plain = wb.sequence_render(scene, path, probe_interval=0)
    warped = wb.sequence_render(scene, path, probe_interval=0,
                                reproject=cfg)
    group = wb.group_size()
    reports = {
        "fresh per frame": acc.simulate_sequence(
            fresh.trace, group_size=group, temporal=False),
        "plan reuse": acc.simulate_sequence(plain.trace, group_size=group),
        "reprojection": acc.simulate_sequence(warped.trace, group_size=group),
    }
    base = reports["fresh per frame"].total_cycles
    print("\norbit, amortised:")
    for name, report in reports.items():
        print(f"  {name:16s} {report.total_cycles / 1e3:8.1f} kcycles "
              f"({base / report.total_cycles:.2f}x vs fresh)")
    print("\nper-frame ray classification (reprojection run):")
    for k, result in enumerate(warped.results):
        rec = result.reprojection
        if not rec:
            print(f"  frame {k}: Phase I keyframe")
            continue
        quality = psnr(result.image, fresh.results[k].image)
        print(f"  frame {k}: {rec['reprojected']:3d} warped, "
              f"{rec['refinable']:3d} refined, {rec['fresh']:3d} fresh; "
              f"guard {rec['psnr']:.1f} dB, {quality:.1f} dB vs fresh")

    # Fixed cadence vs measured-staleness keyframing across a camera cut.
    cameras, cut = _cut_cameras(FRAMES, SIZE)
    renderer = ASDRRenderer(wb.model(scene), config=ASDRConfig(),
                            num_samples=wb.config.num_samples)
    reference = renderer.render_sequence(
        cameras, probe_interval=1, reuse_poses=False, path_key=("ex", "ref"))
    print(f"\ncamera cut at frame {cut} ({len(cameras)} frames):")
    for name, kwargs in (
        ("fixed cadence", dict(probe_interval=2)),
        ("adaptive", dict(probe_interval=0, adaptive_overlap=BENCH_OVERLAP)),
    ):
        run = renderer.render_sequence(
            cameras, reproject=cfg, path_key=("ex", name), **kwargs)
        quality = [
            _clamped_psnr(run.results[k].image, reference.results[k].image)
            for k in range(len(cameras))
        ]
        probes = [k for k, p in enumerate(run.trace.planned) if p]
        print(f"  {name:14s} probes at {probes} "
              f"({len(probes)} total), min "
              f"{min(quality):.2f} dB, mean {np.mean(quality):.2f} dB")
    print("\nThe adaptive run re-probes exactly at the cut — where the "
          "measured overlap collapses — instead of on a clock.")


if __name__ == "__main__":
    main()
