"""Future-work extension (paper Section 8.2): adaptive Gaussian sampling.

The paper proposes porting ASDR's adaptive sampling to 3D Gaussian
Splatting — "optimizing the number of Gaussian primitives per pixel or
tile" — and defers it to future work.  This example runs the extension
shipped in `repro.gaussian`: fit a Gaussian cloud to a scene, render it
with unlimited blending and with probe-driven per-pixel blend budgets,
and compare blend counts and quality.

Usage::

    python examples/adaptive_gaussian_splatting.py [scene]
"""

import sys

from repro import load_dataset, psnr
from repro.gaussian import (
    AdaptiveGaussianConfig,
    AdaptiveGaussianRenderer,
    GaussianRenderer,
    fit_gaussians,
)


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "mic"
    dataset = load_dataset(scene_name, width=48, height=48)
    print(f"Fitting Gaussians to {scene_name} ...")
    cloud = fit_gaussians(dataset.scene, count=1200, radius=0.025)
    print(f"  {len(cloud)} primitives")

    camera = dataset.cameras[0]
    renderer = GaussianRenderer(cloud)
    full = renderer.render_image(camera)

    adaptive = AdaptiveGaussianRenderer(
        renderer, AdaptiveGaussianConfig(probe_stride=5, threshold=1 / 256)
    )
    result, stats = adaptive.render_image(camera)

    print(f"\nfull render      : {stats['full_blends']:8d} blend ops")
    print(f"adaptive render  : {stats['adaptive_blends']:8d} blend ops "
          f"({stats['savings']:.1%} saved)")
    print(f"PSNR adaptive vs full: {psnr(result.image, full.image):.2f} dB")
    print("\nAs the paper anticipates, per-pixel primitive budgets transfer "
          "directly from NeRF sampling to Gaussian blending.")


if __name__ == "__main__":
    main()
