"""Model portability: run the full ASDR pipeline on TensoRF (Section 6.8).

ASDR's optimisations act on the sampling and compositing stages shared by
parametric-encoding NeRFs, so swapping the hash grid for TensoRF's VM
decomposition requires no algorithm changes.  This example distills a
TensoRF model and compares fixed-budget vs ASDR rendering on it.

Usage::

    python examples/tensorf_portability.py [scene]
"""

import sys

from repro import (
    ASDRRenderer,
    BaselineRenderer,
    TensoRFConfig,
    TensoRFModel,
    TrainingConfig,
    distill_scene,
    load_dataset,
    psnr,
)


def main() -> None:
    scene_name = sys.argv[1] if len(sys.argv) > 1 else "chair"
    dataset = load_dataset(scene_name, width=56, height=56)
    model = TensoRFModel(
        TensoRFConfig(resolution=48, num_components=8,
                      density_hidden_dim=32, color_hidden_dim=64),
        seed=0,
    )
    print(f"Distilling {scene_name} into TensoRF "
          f"({model.parameter_count():,} parameters) ...")
    distill_scene(model, dataset.scene, TrainingConfig(steps=250, batch_size=1024))

    camera = dataset.cameras[0]
    reference = dataset.reference_image(0, num_samples=192)
    baseline = BaselineRenderer(model, num_samples=48).render_image(camera)
    asdr = ASDRRenderer(model, num_samples=48).render_image(camera)

    print(f"\nTensoRF fixed budget : PSNR {psnr(baseline.image, reference):.2f}, "
          f"{baseline.points_total:,} density points, "
          f"{baseline.color_points:,} color evals")
    print(f"TensoRF + ASDR       : PSNR {psnr(asdr.image, reference):.2f}, "
          f"{asdr.density_points:,} density points, "
          f"{asdr.color_points:,} color evals")
    print(f"ASDR vs baseline     : {psnr(asdr.image, baseline.image):.2f} dB "
          f"(near-lossless), "
          f"{baseline.total_flops / asdr.total_flops:.2f}x fewer FLOPs")


if __name__ == "__main__":
    main()
