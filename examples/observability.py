"""Observability study: watch a serving run without changing it.

The telemetry layer is an *observer*: every event it emits reads values
the simulation already computed, so serving with a live recorder yields
a report bit-identical to serving without one — this script proves that
first, then spends the identity dividend on visibility.  One preemptive
serving run over the default three-client mix (an orbit, a hand-held
shake sharing a keyframe pose with it, and the orbit's twin) is recorded
once and consumed four ways:

1. the **neutrality check** — recorder-on vs recorder-off report
   equality, the invariant that makes telemetry safe-by-default;
2. the **event stream** — per-quantum scheduling decisions, scan-outs,
   preemptions, cache hits, printed as a kind histogram;
3. the **metrics registry** — counters/gauges/histograms folded live
   from the same events;
4. the **timeline dashboard** and the Perfetto-loadable trace — the
   same run as tracks (clients), slices (quanta) and counters (queue
   depth), written next to this script's JSONL event log.

Usage::

    python examples/observability.py [scene]

Artifacts land in the working directory: ``obs_events.jsonl`` (replay
with ``python -m repro timeline obs_events.jsonl``) and
``obs_trace.json`` (load at https://ui.perfetto.dev).
"""

import sys
from collections import Counter

from repro.experiments.serving import default_client_mix, serve_reports
from repro.experiments.workbench import Workbench
from repro.obs import (
    MemoryRecorder,
    MetricsRegistry,
    render_dashboard,
    write_chrome_trace,
    write_events_jsonl,
)

POLICY = "round_robin_preemptive"


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "palace"
    wb = Workbench()
    requests = default_client_mix(scene=scene)
    print(f"Scene: {scene}, {len(requests)} clients, "
          f"{requests[0].path.frames} frames each, policy {POLICY}")

    # 1. Zero perturbation: the recorded run's report is bit-identical
    #    to the unrecorded one.
    metrics = MetricsRegistry()
    recorder = MemoryRecorder(metrics=metrics)
    recorded = serve_reports(
        wb, requests, policies=[POLICY], recorder=recorder
    )[POLICY]
    plain = serve_reports(wb, requests, policies=[POLICY])[POLICY]
    identical = recorded.to_dict() == plain.to_dict()
    print(f"\nrecorder on vs off: reports identical = {identical}")
    assert identical, "telemetry must never perturb the simulation"

    # 2. The event stream the run emitted.
    kinds = Counter(e.kind for e in recorder.events)
    print(f"\n{len(recorder.events)} events recorded:")
    for kind, count in sorted(kinds.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:<16} {count:>5}")

    # 3. The metrics registry folded from the same stream.
    folded = metrics.to_dict()
    frames = sum(
        row["value"]
        for row in folded["counters"]
        if row["name"] == "frames_delivered"
    )
    print(f"\nmetrics: frames_delivered={frames:.0f}, "
          f"{len(folded['counters'])} counter series, "
          f"{len(folded['histograms'])} histogram series")

    # 4. The run as a terminal timeline, then as exportable artifacts.
    print()
    print(render_dashboard(recorder.events, width=72))
    clock_hz = recorded.clock_hz
    write_events_jsonl("obs_events.jsonl", recorder.events, clock_hz,
                       meta={"scene": scene, "policy": POLICY})
    write_chrome_trace("obs_trace.json", recorder.events, clock_hz)
    print("\nwrote obs_events.jsonl  (python -m repro timeline "
          "obs_events.jsonl)")
    print("wrote obs_trace.json    (load at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
