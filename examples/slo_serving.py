"""SLO study: serving classes under overload, control loops armed.

The overload sibling of ``multi_tenant_serving.py``: seven tenants in
three service classes — one ``interactive`` viewer paced faster than it
could render alone at full quality, one ``standard`` stream, four
``batch`` renders, plus a seventh batch tenant whose only job is to trip
the admission cap — are offered to one simulated server accelerator.

The same calibrated mix is served twice on identical deadlines:

* **baseline** — everything admitted, nothing controlled: the
  interactive tenant queues behind batch work and misses its cadence;
* **armed** — admission control rejects the overflow tenant, load
  shedding drops batch head frames that can no longer make their
  deadlines, and degraded-quality mode serves plan-reuse frames at a
  reduced sampling budget behind a PSNR guard.  The interactive class
  recovers its SLO at *lower* fleet cycles.

A closing run swaps the fixed preemption quantum for the online
auto-tuner (``quantum="auto"``).

Usage::

    python examples/slo_serving.py [scene]
"""

import sys

from repro.experiments.slo import (
    BASELINE_POLICY,
    SLO_POLICY,
    calibrate_deadlines,
    degrade_psnr_map,
    overload_mix,
)
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.obs.recorder import MemoryRecorder
from repro.serving.policies import make_policy
from repro.serving.server import SequenceServer
from repro.serving.slo import AUTO_QUANTUM, AdmissionError, SLOConfig

FRAMES = 4
SIZE = 8


def attainment_line(report):
    classes = report.slo_attainment
    return ", ".join(f"{cls} {val:.2f}" for cls, val in sorted(classes.items()))


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "palace"
    wb = Workbench()
    admitted, overflow = overload_mix(scene=scene, frames=FRAMES, size=SIZE)
    # Deadlines come from each tenant's measured share of a fair serve,
    # scaled per class — the interactive cadence lands *between* the
    # degraded pace and the full-quality solo pace, so only the control
    # loops can meet it.
    calibrated = calibrate_deadlines(wb, list(admitted) + [overflow])
    admitted, overflow = calibrated[:-1], calibrated[-1]
    print(f"Scene: {scene}, {len(admitted)} admitted tenants "
          f"({FRAMES} frames at {SIZE}x{SIZE}) + 1 overflow tenant")
    for request in admitted:
        print(f"  {request.client_id:6s} {request.slo_class:12s} "
              f"interval {request.frame_interval_cycles} cycles")

    # Baseline: everything admitted, nothing controlled.
    baseline = SequenceServer(
        experiment_accelerator("server"), group_size=wb.group_size()
    )
    for request in admitted:
        baseline.submit(request, wb.client_sequence(request))
    cap = int(baseline.projected_backlog_cycles()) + 1
    baseline.submit(overflow, wb.client_sequence(overflow))
    base_report = baseline.serve(BASELINE_POLICY)
    print(f"\nbaseline ({BASELINE_POLICY}, everything admitted):")
    print(f"  attainment: {attainment_line(base_report)}")
    print(f"  busy {base_report.busy_cycles / 1e3:.1f} kcycles")

    # Armed run: admission cap just above the admitted backlog, shedding
    # and PSNR-guarded degrade on.
    config = SLOConfig(
        admit_cycles=cap,
        shed=True,
        degrade=True,
        degrade_fraction=0.5,
        degrade_min_psnr=18.0,
        degrade_psnr=degrade_psnr_map(wb, admitted, fraction=0.5),
    )
    recorder = MemoryRecorder()
    armed = SequenceServer(
        experiment_accelerator("server"),
        group_size=wb.group_size(),
        slo=config,
        recorder=recorder,
    )
    for request in admitted:
        armed.submit(request, wb.client_sequence(request))
    try:
        armed.submit(overflow, wb.client_sequence(overflow))
    except AdmissionError as exc:
        print(f"\nadmission control: {exc}")
    slo_report = armed.serve(SLO_POLICY)
    print(f"\narmed ({SLO_POLICY}, admission + shed + degrade):")
    print(f"  attainment: {attainment_line(slo_report)}")
    print(f"  busy {slo_report.busy_cycles / 1e3:.1f} kcycles "
          f"({slo_report.busy_cycles / base_report.busy_cycles:.2f}x baseline)")
    shed = sum(c.shed_frames for c in slo_report.clients)
    degraded = [d for c in slo_report.clients for d in c.degraded]
    print(f"  shed {shed} batch frames; degraded {len(degraded)} frames "
          f"(PSNR floor {config.degrade_min_psnr} dB):")
    for client in slo_report.clients:
        for entry in client.degraded:
            print(f"    {client.client_id} frame {entry['frame']}: "
                  f"{entry['fraction']:.0%} budget, "
                  f"{entry['psnr']:.1f} dB vs full quality")

    # Auto-tuned quantum: same mix, the tuner resizes the preemption
    # quantum toward the measured p95 wavefront-step cost.
    auto_report = armed.serve(make_policy(SLO_POLICY, quantum=AUTO_QUANTUM))
    tunes = [e for e in recorder.events if e.kind == "quantum_tune"]
    print(f"\nauto quantum ({len(tunes)} resizes): "
          f"attainment {attainment_line(auto_report)}")
    for event in tunes:
        print(f"  quantum -> {event.fields['quantum']} "
              f"(p95 step {event.fields['p95_step_cycles']} cycles)")


if __name__ == "__main__":
    main()
